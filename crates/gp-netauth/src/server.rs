//! Sharded, pipelined TCP authentication server.
//!
//! The serving path is built for concurrency in three layers:
//!
//! 1. **Sharded state** — accounts live in a
//!    [`ShardedPasswordStore`] (which also caches each account's per-salt
//!    hashing state) and failure counts in a sharded [`LockoutTracker`],
//!    so serving threads contend only when they touch the same partition.
//! 2. **Connection multiplexing** ([`ServerConfig::serving`]) —
//!    [`AuthServer::spawn`] serves either through the `epoll` reactor
//!    ([`crate::reactor`], Linux default: connections decoupled from
//!    threads) or through a bounded blocking worker pool fed from a
//!    bounded connection queue (accepting parks when the queue is full).
//!    Either way, a serving turn drains every request frame already
//!    buffered on a connection (up to [`ServerConfig::pipeline_max`]) and
//!    answers in order, so a client may keep many requests in flight and
//!    per-request syscall cost amortizes across the pipeline.
//! 3. **Cross-connection batch verification** — the expensive iterated
//!    hash of each login goes through the shared [`BatchVerifier`], which
//!    coalesces up to [`ServerConfig::batch_max`] attempts (from one
//!    pipeline or from many connections) into a single multi-lane
//!    [`gp_crypto::iterated_hash_many_salted`] run — the PR 1 fast path.
//!
//! Request handling stays a pure function ([`AuthServer::handle_message`])
//! so the protocol logic is unit-testable without sockets; the turn
//! phases (prepare / batch hash / settle) are shared by the blocking loop
//! ([`AuthServer::serve_streams`], generic over `Read`/`Write` so
//! fault-injection tests can drive it with in-memory transports) and the
//! reactor's state machines.

use crate::batch::{BatchStats, BatchVerifier, HashJob};
use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use crate::lockout::LockoutTracker;
use crate::pending::PendingAccounts;
use crate::protocol::{ClientMessage, LoginDecision, ServerMessage};
use crate::replication::ReplicationSink;
use bytes::Bytes;
use gp_crypto::Digest;
use gp_geometry::{ImageDims, Point};
use gp_passwords::{
    DiscretizationConfig, DurabilityOptions, FsyncPolicy, GraphicalPasswordSystem, PasswordPolicy,
    ShardStats, ShardedPasswordStore, StoredPassword, VerifyScratch, WalEntry,
};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Consecutive undecodable/corrupt frames tolerated on one connection
/// before the server gives up on it (a desynced or hostile peer).
pub(crate) const MAX_CONSECUTIVE_PROTOCOL_ERRORS: u32 = 32;

/// How often blocked workers re-check the shutdown flag.
pub(crate) const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

/// How long a worker may block writing a response before the connection is
/// declared dead.  A peer that stops reading (full kernel send buffer)
/// must not wedge a worker in `flush()` — or `ServerHandle::shutdown`,
/// which joins every worker.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// How connections are multiplexed onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// Event-driven `epoll` reactor (Linux): one reactor thread owns every
    /// connection's nonblocking state machine and a small hash-compute
    /// pool does the iterated hashing, so connection count is decoupled
    /// from thread count.  Falls back to [`ServingMode::WorkerPool`] on
    /// non-Linux targets.
    Reactor,
    /// Blocking worker pool: each worker thread parks on one connection at
    /// a time, so concurrent-connection capacity is capped near
    /// [`ServerConfig::workers`].
    WorkerPool,
}

impl ServingMode {
    /// The best mode the target supports: [`ServingMode::Reactor`] on
    /// Linux, [`ServingMode::WorkerPool`] elsewhere.
    pub fn platform_default() -> Self {
        if cfg!(target_os = "linux") {
            Self::Reactor
        } else {
            Self::WorkerPool
        }
    }
}

/// Crash-safety knobs for the serving layer's account store.
///
/// When set on [`ServerConfig::durability`], the store is opened with
/// [`ShardedPasswordStore::open_durable`]: every enrollment is appended to
/// the owning shard's write-ahead log — and, under
/// [`FsyncPolicy::Always`], fsynced — *before* the `Enroll` frame is
/// acknowledged, a background thread compacts per-shard logs past
/// `snapshot_threshold_bytes` without blocking verifies, and a restart
/// recovers the newest intact snapshots plus each WAL's intact tail.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding the per-shard snapshots (`shard-NNN.pwd`) and
    /// write-ahead logs (`shard-NNN.wal`).
    pub dir: PathBuf,
    /// When WAL appends reach stable storage (acknowledgement latency vs.
    /// crash loss window).
    pub fsync: FsyncPolicy,
    /// Per-shard WAL size (bytes) past which the background snapshot
    /// thread compacts the shard.
    pub snapshot_threshold_bytes: u64,
    /// How often the background snapshot thread checks the thresholds.
    pub snapshot_interval: Duration,
}

impl DurabilityConfig {
    /// Strictest defaults at `dir`: fsync on every enrollment, compact a
    /// shard once its log passes 1 MiB, check every 200 ms.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_threshold_bytes: 1024 * 1024,
            snapshot_interval: Duration::from_millis(200),
        }
    }

    fn options(&self) -> DurabilityOptions {
        DurabilityOptions {
            fsync: self.fsync,
            snapshot_threshold_bytes: self.snapshot_threshold_bytes,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Image dimensions the deployment uses.
    pub image: ImageDims,
    /// Discretization scheme and tolerance.
    pub discretization: DiscretizationConfig,
    /// Clicks per password.
    pub clicks: usize,
    /// Hash iteration count for stored passwords.
    pub hash_iterations: u32,
    /// Consecutive failures before an account locks (0 = never).
    pub max_failures: u32,
    /// Partitions for the account store and lockout tracker.
    pub shards: usize,
    /// Compute parallelism: hash-compute threads in [`ServingMode::Reactor`]
    /// (the reactor itself adds one event-loop thread), per-connection
    /// worker threads in [`ServingMode::WorkerPool`].
    pub workers: usize,
    /// How connections are multiplexed onto threads.
    pub serving: ServingMode,
    /// Maximum simultaneously open connections in reactor mode (further
    /// accepts are immediately closed).  The pool mode's cap is implicit:
    /// `workers + pending_connections`.
    pub max_connections: usize,
    /// Maximum login attempts coalesced into one multi-lane hash run
    /// (1 = scalar verification, the pre-batching baseline).
    pub batch_max: usize,
    /// How long a batch leader waits for attempts from other connections
    /// before running a partial batch.
    pub coalesce_window: Duration,
    /// Maximum request frames drained from one connection per turn.
    pub pipeline_max: usize,
    /// Bounded depth of the accepted-connection queue (accepting blocks
    /// when full — backpressure instead of unbounded thread growth).
    pub pending_connections: usize,
    /// Maximum accounts tracked by the lockout sweep (per generation).
    pub lockout_capacity: usize,
    /// How long a worker waits for the next request before dropping an
    /// idle connection.  With a bounded pool a connection occupies a
    /// worker while open, so idle peers (deliberate or not) must not be
    /// able to hold workers forever.  `Duration::ZERO` disables the limit
    /// (in-memory transports in tests).
    pub idle_timeout: Duration,
    /// How long a peer may accept *no* response bytes before the
    /// connection is declared dead.  The pool enforces it as a blocking
    /// socket write timeout; the reactor sweeps connections whose pending
    /// output made no progress for this long.  `Duration::ZERO` disables
    /// the limit.
    pub write_timeout: Duration,
    /// Crash-safe durability for the account store (`None` = in-memory:
    /// the pre-durability behavior, and the right choice for benches and
    /// tests that never restart).
    pub durability: Option<DurabilityConfig>,
}

impl ServerConfig {
    /// A PassPoints-style deployment with Centered Discretization (r = 9)
    /// on the study image, three-strikes lockout, four shards and a small
    /// worker pool with 16-way batch verification.
    pub fn study_default() -> Self {
        Self {
            image: ImageDims::STUDY,
            discretization: DiscretizationConfig::centered(9),
            clicks: 5,
            hash_iterations: 1000,
            max_failures: 3,
            shards: 4,
            workers: 4,
            serving: ServingMode::platform_default(),
            max_connections: 4096,
            batch_max: gp_crypto::LANES,
            coalesce_window: Duration::from_micros(200),
            pipeline_max: 32,
            pending_connections: 128,
            lockout_capacity: 65_536,
            idle_timeout: Duration::from_secs(10),
            write_timeout: WRITE_TIMEOUT,
            durability: None,
        }
    }

    /// The same deployment with a reduced iteration count, for tests.
    pub fn fast_for_tests() -> Self {
        Self {
            hash_iterations: 2,
            ..Self::study_default()
        }
    }

    /// The pre-sharding serving shape: one shard, one blocking worker,
    /// scalar verification.  The `authload` bench drives this as the
    /// baseline the sharded/pooled/batched configuration is measured
    /// against.
    pub fn single_worker_baseline() -> Self {
        Self {
            shards: 1,
            workers: 1,
            serving: ServingMode::WorkerPool,
            batch_max: 1,
            coalesce_window: Duration::ZERO,
            ..Self::study_default()
        }
    }

    /// The PR 2 serving shape: blocking worker pool with sharding and
    /// batching, no reactor.  `authload` measures the reactor against this.
    pub fn pooled_baseline() -> Self {
        Self {
            serving: ServingMode::WorkerPool,
            ..Self::study_default()
        }
    }
}

/// Per-worker serving counters (atomics; [`ServerHandle::stats`] snapshots
/// them into [`WorkerStatsSnapshot`]s).  In reactor mode the first entry
/// belongs to the event-loop thread and the rest to hash-compute workers.
#[derive(Debug, Default)]
pub struct WorkerMetrics {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) logins: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
}

/// Point-in-time copy of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Worker index within the pool.
    pub worker: usize,
    /// Connections this worker has served.
    pub connections: u64,
    /// Requests answered (all message kinds).
    pub requests: u64,
    /// Login attempts processed.
    pub logins: u64,
    /// Corrupt or undecodable frames answered with protocol errors.
    pub protocol_errors: u64,
}

impl WorkerMetrics {
    fn snapshot(&self, worker: usize) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            worker,
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            logins: self.logins.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Aggregate serving statistics: per-worker, per-shard and batching.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// One snapshot per pool worker.
    pub workers: Vec<WorkerStatsSnapshot>,
    /// Account-store shard sizes and traffic.
    pub shards: Vec<ShardStats>,
    /// Batch-verifier coalescing counters.
    pub batch: BatchStats,
    /// Replication and anti-entropy repair counters, when a sink that
    /// tracks them (a [`crate::replication::Replicator`]) is attached.
    pub replication: Option<crate::replication::ReplicationStats>,
}

/// What phase 1 of request processing decided for one pipelined request.
pub(crate) enum Planned {
    /// Response is already known (cheap messages, protocol errors,
    /// unknown accounts, structurally invalid enrollments).
    Respond(ServerMessage),
    /// A login that cannot match (structural failure, foreign provenance,
    /// or already locked): settle against the lockout in order, no hash.
    LoginNoHash { username: String },
    /// A login whose hash job `job_index` is in flight with the batch
    /// verifier.
    LoginHashed {
        username: String,
        stored: Box<StoredPassword>,
        job_index: usize,
    },
    /// An enrollment whose record is complete except for the digest being
    /// computed by hash job `job_index`.  Settling installs the digest and
    /// inserts the account (duplicate-checked under the shard lock).
    EnrollHashed {
        record: Box<StoredPassword>,
        job_index: usize,
    },
}

/// One connection turn after phase 1: the in-order response plan, the hash
/// jobs it needs, and whether the turn ends the connection.
///
/// Shared by the blocking pipelined loop (which hashes and settles
/// immediately) and the reactor (which ships the turn to the hash-compute
/// pool and settles on completion).
pub(crate) struct PreparedTurn {
    pub(crate) planned: Vec<Planned>,
    pub(crate) jobs: Vec<HashJob>,
    pub(crate) quitting: bool,
    /// `Some(account)` when the turn stopped early at a login for an
    /// account whose enrollment is in flight but not yet group-committed
    /// (the per-account write barrier).  The login's frame is back at the
    /// front of the queue; prepare again once the account's barrier lands.
    pub(crate) parked: Option<String>,
}

/// One settled enrollment awaiting its group-commit barrier: which
/// response to patch if the barrier fails, which shard to flush, and the
/// record clone to stream to the replication sink (when one is attached).
pub(crate) struct EnrollCommit {
    response_index: usize,
    username: String,
    shard: usize,
    entry: Option<WalEntry>,
}

/// One turn after phase 3 ([`AuthServer::settle_turn`]): the in-order
/// responses, plus the enrollments whose `EnrollOk`s are provisional
/// until [`AuthServer::commit_enrolls`] runs their barrier.
pub(crate) struct SettledTurn {
    pub(crate) responses: Vec<ServerMessage>,
    enrolls: Vec<EnrollCommit>,
}

/// The authentication server.
#[derive(Debug)]
pub struct AuthServer {
    config: ServerConfig,
    system: GraphicalPasswordSystem,
    store: Arc<ShardedPasswordStore>,
    lockout: Arc<LockoutTracker>,
    verifier: Arc<BatchVerifier>,
    /// Accounts whose enrollment is accepted but not yet group-committed
    /// (the per-account write barrier).
    pending: PendingAccounts,
    /// When set, every successful enrollment is streamed here before the
    /// `EnrollOk` is released (see [`crate::replication`]).
    replication: Option<Arc<dyn ReplicationSink>>,
}

impl AuthServer {
    /// Create a server with an in-memory account store.  Panics if
    /// [`ServerConfig::durability`] is set and the store cannot be
    /// opened — durable deployments should call [`AuthServer::open`].
    pub fn new(config: ServerConfig) -> Self {
        // gp-lint: allow(L4, documented panic contract; durable configs use AuthServer::open)
        Self::open(config).expect("open account store (use AuthServer::open for durable configs)")
    }

    /// Create a server, opening (and crash-recovering) the durable
    /// account store when [`ServerConfig::durability`] is set.
    pub fn open(config: ServerConfig) -> Result<Self, NetAuthError> {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(config.image, config.clicks),
            config.discretization,
            config.hash_iterations,
        );
        let store = Arc::new(match &config.durability {
            Some(durability) => ShardedPasswordStore::open_durable(
                &durability.dir,
                config.shards,
                durability.options(),
            )?,
            None => ShardedPasswordStore::new(config.shards),
        });
        let lockout = Arc::new(LockoutTracker::with_limits(
            config.max_failures,
            config.lockout_capacity,
            config.shards.max(1),
        ));
        let verifier = Arc::new(BatchVerifier::new(config.batch_max, config.coalesce_window));
        Ok(Self {
            config,
            system,
            store,
            lockout,
            verifier,
            pending: PendingAccounts::new(),
            replication: None,
        })
    }

    /// Attach a replication sink: from now on an enrollment is only
    /// acknowledged after `sink.replicate(..)` returns (which, for a
    /// synchronous [`crate::replication::Replicator`], means the record
    /// is durable on the account's backup node too).
    pub fn with_replication(mut self, sink: Arc<dyn ReplicationSink>) -> Self {
        self.replication = Some(sink);
        self
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The sharded account store (shared; useful for pre-seeding accounts
    /// in tests, examples and benches).
    pub fn store(&self) -> Arc<ShardedPasswordStore> {
        Arc::clone(&self.store)
    }

    /// The lockout tracker.
    pub fn lockout(&self) -> Arc<LockoutTracker> {
        Arc::clone(&self.lockout)
    }

    /// The batch verifier (exposed for stats).
    pub fn verifier(&self) -> Arc<BatchVerifier> {
        Arc::clone(&self.verifier)
    }

    /// The underlying password system.
    pub fn system(&self) -> &GraphicalPasswordSystem {
        &self.system
    }

    /// The per-account write barrier table (serving internals and tests).
    pub(crate) fn pending(&self) -> &PendingAccounts {
        &self.pending
    }

    /// Handle a single request (protocol logic, no I/O).
    ///
    /// Logins route through the same split-phase prepare/batch/finish path
    /// the pipelined loop uses, so even the one-at-a-time entry point hits
    /// the multi-lane-capable verifier.
    pub fn handle_message(&self, message: ClientMessage) -> ServerMessage {
        match message {
            ClientMessage::GetConfig => ServerMessage::Config {
                scheme: self.config.discretization.to_header(),
                clicks: self.config.clicks as u32,
            },
            ClientMessage::Quit => ServerMessage::Goodbye,
            ClientMessage::Enroll { username, clicks } => {
                let mut jobs = Vec::new();
                let planned = self.prepare_enroll(username, &clicks, &mut jobs);
                let digests = self.verifier.submit(jobs);
                self.settle_responses(vec![planned], &digests)
                    .pop()
                    .unwrap_or_else(|| ServerMessage::Error {
                        reason: "internal: settle produced no response".to_string(),
                    })
            }
            ClientMessage::Login { username, clicks } => {
                let mut scratch = VerifyScratch::new();
                let mut jobs = Vec::new();
                let planned = self.prepare_login(username, &clicks, &mut scratch, &mut jobs);
                let digests = self.verifier.submit(jobs);
                self.settle_responses(vec![planned], &digests)
                    .pop()
                    .unwrap_or_else(|| ServerMessage::Error {
                        reason: "internal: settle produced no response".to_string(),
                    })
            }
        }
    }

    /// Phase 1 of enrollment handling: validate, discretize and build the
    /// digest-less record, appending the enrollment hash as a [`HashJob`]
    /// — enrollment hashes cost the same `h^k` as logins, so they must go
    /// through the batch pipeline too (never the reactor's event-loop
    /// thread), and they batch with concurrent logins.
    fn prepare_enroll(
        &self,
        username: String,
        clicks: &[Point],
        jobs: &mut Vec<HashJob>,
    ) -> Planned {
        match self.system.prepare_enroll(&username, clicks) {
            Err(e) => Planned::Respond(ServerMessage::Error {
                reason: e.to_string(),
            }),
            Ok((record, pre_image)) => {
                // The account is pending from this moment until the
                // enrollment's group commit (or its settle-time refusal):
                // a login for it parks instead of racing the barrier.
                self.pending.begin(&record.username);
                let job_index = jobs.len();
                jobs.push(HashJob {
                    hasher: gp_crypto::SaltedHasher::new(&record.hash.salt),
                    pre_image,
                    iterations: record.hash.iterations,
                });
                Planned::EnrollHashed {
                    record: Box::new(record),
                    job_index,
                }
            }
        }
    }

    /// Phase 1 of login handling: everything cheap.  Looks the account up
    /// in its shard, discretizes and encodes the attempt, checks
    /// provenance, and either settles immediately or appends a [`HashJob`]
    /// to `jobs` for the batch verifier.
    ///
    /// The job carries the store's *cached* per-salt hashing state
    /// ([`ShardedPasswordStore::get_cached`]): the salt was absorbed once
    /// at enrollment and every subsequent attempt clones plain stack data
    /// instead of re-hashing it (2–3× per round for long salts, per the
    /// midstate benches).
    fn prepare_login(
        &self,
        username: String,
        clicks: &[Point],
        scratch: &mut VerifyScratch,
        jobs: &mut Vec<HashJob>,
    ) -> Planned {
        let Some((stored, hasher)) = self.store.get_cached(&username) else {
            return Planned::Respond(ServerMessage::Error {
                reason: format!("unknown account {username:?}"),
            });
        };
        if self.lockout.is_locked(&username) {
            // Definitely locked now; settle in order at finish time (where
            // the decision is re-checked) without paying for a hash.
            return Planned::LoginNoHash { username };
        }
        match self.system.prepare_verify(&stored, clicks, scratch) {
            // Structurally invalid attempts (wrong click count, clicks
            // outside the image) are failures; so are records whose
            // salt/iteration provenance can never match this system.
            Err(_) | Ok(None) => Planned::LoginNoHash { username },
            Ok(Some(pre_image)) => {
                let job_index = jobs.len();
                jobs.push(HashJob {
                    hasher,
                    pre_image,
                    iterations: stored.hash.iterations,
                });
                Planned::LoginHashed {
                    username,
                    stored: Box::new(stored),
                    job_index,
                }
            }
        }
    }

    /// Phase 1 for one turn: pop frames off the connection's queue
    /// (`None` marks a frame that failed its integrity check), prepare
    /// logins/enrollments, and collect the turn's hash jobs.
    /// `consecutive_errors` carries the connection's bad-frame streak
    /// across turns; a decodable frame resets it.
    ///
    /// Enrollments do **not** end the turn: they batch with the logins
    /// behind them, and their `EnrollOk`s are released together after the
    /// turn's single group-commit barrier.  Two things end a turn early,
    /// leaving later frames queued:
    ///
    /// * `Quit` — the connection is done (callers drop the rest);
    /// * a login for an account whose enrollment is pending (the
    ///   *per-account* write barrier, [`PendingAccounts`]): its frame
    ///   goes back to the front of the queue and the turn reports
    ///   `parked`, to be prepared again once the enrollment's group
    ///   commit lands.  Logins for every *other* account flow untouched.
    pub(crate) fn prepare_turn(
        &self,
        frames: &mut std::collections::VecDeque<Option<Bytes>>,
        scratch: &mut VerifyScratch,
        metrics: &WorkerMetrics,
        consecutive_errors: &mut u32,
    ) -> PreparedTurn {
        let mut planned = Vec::with_capacity(frames.len());
        let mut jobs = Vec::new();
        let mut quitting = false;
        let mut parked = None;
        while let Some(frame) = frames.pop_front() {
            let (message, raw) = match frame {
                None => {
                    metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    *consecutive_errors += 1;
                    planned.push(Planned::Respond(ServerMessage::Error {
                        reason: NetAuthError::IntegrityFailure.to_string(),
                    }));
                    continue;
                }
                Some(frame) => {
                    // Cheap refcount clone, kept only in case this frame
                    // parks and must be re-queued for the next turn.
                    let raw = frame.clone();
                    match ClientMessage::decode(frame) {
                        Ok(message) => (message, raw),
                        Err(e) => {
                            metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            *consecutive_errors += 1;
                            planned.push(Planned::Respond(ServerMessage::Error {
                                reason: format!("bad request: {e}"),
                            }));
                            continue;
                        }
                    }
                }
            };
            *consecutive_errors = 0;
            match message {
                ClientMessage::Quit => {
                    planned.push(Planned::Respond(ServerMessage::Goodbye));
                    quitting = true;
                    break;
                }
                ClientMessage::Login { username, clicks } => {
                    if self.pending.is_pending(&username) {
                        // Same-account barrier: this login may only be
                        // prepared after the enrollment it races is
                        // committed (in-order pipelining keeps the frames
                        // behind it queued too).
                        frames.push_front(Some(raw));
                        parked = Some(username);
                        break;
                    }
                    metrics.logins.fetch_add(1, Ordering::Relaxed);
                    planned.push(self.prepare_login(username, &clicks, scratch, &mut jobs));
                }
                ClientMessage::Enroll { username, clicks } => {
                    planned.push(self.prepare_enroll(username, &clicks, &mut jobs));
                }
                // Only GetConfig/Quit reach here (Login/Enroll matched
                // above), and neither touches the store or the WAL; the
                // static call graph cannot see the match narrowing.
                // gp-lint: allow(L5, only store-free GetConfig/Quit reach handle_message here)
                other => planned.push(Planned::Respond(self.handle_message(other))),
            }
        }
        PreparedTurn {
            planned,
            jobs,
            quitting,
            parked,
        }
    }

    /// Phase 3 for a whole turn: settle every planned request against the
    /// lockout state, in pipeline order, and produce the in-order
    /// responses.  `digests` are the turn's hash results, indexed by each
    /// job's `job_index`.
    ///
    /// Enrollments are settled *provisionally*: the record lands in the
    /// in-memory store and its WAL append is staged (no fsync), the
    /// response slot holds `EnrollOk`, and an [`EnrollCommit`] remembers
    /// the slot.  Nothing from the returned [`SettledTurn`] may reach a
    /// client until [`AuthServer::commit_enrolls`] runs the group-commit
    /// barrier over it.
    pub(crate) fn settle_turn(&self, planned: Vec<Planned>, digests: &[Digest]) -> SettledTurn {
        let mut enrolls = Vec::new();
        let responses = planned
            .into_iter()
            .enumerate()
            .map(|(index, plan)| match plan {
                Planned::Respond(response) => response,
                Planned::LoginNoHash { username } => self.finish_login(&username, None),
                Planned::LoginHashed {
                    username,
                    stored,
                    job_index,
                } => {
                    let matched = self.system.finish_verify(&stored, &digests[job_index]);
                    self.store.note_verified(&username);
                    self.finish_login(&username, Some(matched))
                }
                Planned::EnrollHashed { record, job_index } => {
                    let record =
                        GraphicalPasswordSystem::finish_enroll(*record, digests[job_index]);
                    let username = record.username.clone();
                    // Clone taken only when a sink is attached: the local
                    // insert consumes the record, the sink streams the copy.
                    let entry = self
                        .replication
                        .as_ref()
                        .map(|_| WalEntry::Enroll(record.clone()));
                    match self.store.insert_new_deferred(record) {
                        Ok(shard) => {
                            enrolls.push(EnrollCommit {
                                response_index: index,
                                username,
                                shard,
                                entry,
                            });
                            // Provisional: patched to an error if the group
                            // commit (or replication) fails.
                            ServerMessage::EnrollOk
                        }
                        Err(e) => {
                            // Refused before any WAL append: the account
                            // barrier lifts right here.
                            self.pending.end(&username);
                            ServerMessage::Error {
                                reason: e.to_string(),
                            }
                        }
                    }
                }
            })
            .collect();
        SettledTurn { responses, enrolls }
    }

    /// Phase 4: the group-commit barrier.  One `fsync` per distinct shard
    /// across *all* the turns in the batch, then one grouped replication
    /// round, then every pending account barrier lifts.  On failure the
    /// provisional `EnrollOk`s are patched to errors in place — callers
    /// must not have released any response before this returns.
    pub(crate) fn commit_enrolls(&self, turns: &mut [SettledTurn]) {
        if turns.iter().all(|turn| turn.enrolls.is_empty()) {
            return;
        }
        let committed = self.store.commit_shards(
            turns
                .iter()
                .flat_map(|turn| turn.enrolls.iter().map(|enroll| enroll.shard)),
        );
        // Sync-mode backup acks join the same barrier: all of the batch's
        // entries stream out pipelined and one ack-wait covers them,
        // instead of a send/wait round-trip per enrollment.
        let replicated = match (&committed, &self.replication) {
            (Ok(()), Some(sink)) => {
                let entries: Vec<WalEntry> = turns
                    .iter_mut()
                    .flat_map(|turn| turn.enrolls.iter_mut().filter_map(|e| e.entry.take()))
                    .collect();
                if entries.is_empty() {
                    Ok(())
                } else {
                    sink.replicate_group(&entries)
                }
            }
            _ => Ok(()),
        };
        for turn in turns.iter_mut() {
            for enroll in &turn.enrolls {
                if let Err(e) = &committed {
                    turn.responses[enroll.response_index] = ServerMessage::Error {
                        reason: e.to_string(),
                    };
                } else if let Err(e) = &replicated {
                    turn.responses[enroll.response_index] = ServerMessage::Error {
                        reason: format!("replication failed: {e}"),
                    };
                }
                self.pending.end(&enroll.username);
            }
        }
    }

    /// Settle one turn and commit it immediately: the single-turn
    /// convenience over [`AuthServer::settle_turn`] +
    /// [`AuthServer::commit_enrolls`] used by the blocking pool path and
    /// direct callers.  The reactor's compute loop calls the two phases
    /// itself so one barrier covers a whole coalesced batch.
    pub(crate) fn settle_responses(
        &self,
        planned: Vec<Planned>,
        digests: &[Digest],
    ) -> Vec<ServerMessage> {
        let mut turn = self.settle_turn(planned, digests);
        self.commit_enrolls(std::slice::from_mut(&mut turn));
        turn.responses
    }

    /// Phase 2 of login handling: settle one attempt against the lockout
    /// state, in pipeline order.  `verdict` is `Some(matched)` for hashed
    /// attempts and `None` for attempts that could not match.
    ///
    /// Lock check and count update happen under one shard-lock acquisition
    /// ([`LockoutTracker::settle_attempt`]), so concurrent wrong attempts
    /// from different connections can never report a failure count past
    /// the threshold.
    fn finish_login(&self, username: &str, verdict: Option<bool>) -> ServerMessage {
        let success = verdict == Some(true);
        let (was_locked, failures) = self.lockout.settle_attempt(username, success);
        let decision = if was_locked {
            LoginDecision::LockedOut
        } else if success {
            LoginDecision::Accepted
        } else {
            LoginDecision::Rejected
        };
        ServerMessage::LoginResult { decision, failures }
    }

    /// Aggregate serving statistics.  `workers` carries one entry per pool
    /// worker when called through [`ServerHandle::stats`]; direct callers
    /// with no running pool get an empty list.
    fn stats_with_workers(&self, workers: Vec<WorkerStatsSnapshot>) -> ServerStats {
        ServerStats {
            workers,
            shards: self.store.stats(),
            batch: self.verifier.stats(),
            replication: self.replication.as_ref().and_then(|sink| sink.stats()),
        }
    }

    /// Bind to `127.0.0.1:0` and serve connections until the returned
    /// handle is shut down or dropped.
    ///
    /// [`ServerConfig::serving`] picks the multiplexing strategy: the
    /// `epoll` reactor (Linux; one event-loop thread plus
    /// [`ServerConfig::workers`] hash-compute threads) or the blocking
    /// worker pool.  Requesting the reactor on a non-Linux target quietly
    /// serves through the pool instead.
    pub fn spawn(self) -> Result<ServerHandle, NetAuthError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = Arc::new(self);
        let mut handle = Self::spawn_serving(server, listener, addr, shutdown)?;
        // Durable stores get a background compaction thread: per-shard
        // WALs past the size threshold are folded into atomic snapshots
        // without blocking verifies (readers never wait on a snapshot).
        if let Some(durability) = handle.server.config().durability.clone() {
            let store = handle.server.store();
            let shutdown = Arc::clone(&handle.shutdown);
            handle.snapshot_join = Some(
                std::thread::Builder::new()
                    .name("gp-auth-snapshot".into())
                    .spawn(move || snapshot_loop(&store, &durability, &shutdown))
                    .map_err(NetAuthError::Io)?,
            );
        }
        Ok(handle)
    }

    /// Spawn the serving threads for the configured [`ServingMode`].
    fn spawn_serving(
        server: Arc<AuthServer>,
        listener: TcpListener,
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
    ) -> Result<ServerHandle, NetAuthError> {
        #[cfg(target_os = "linux")]
        if server.config.serving == ServingMode::Reactor {
            let parts = crate::reactor::spawn_reactor(
                Arc::clone(&server),
                listener,
                Arc::clone(&shutdown),
            )?;
            return Ok(ServerHandle {
                addr,
                shutdown,
                accept_join: Some(parts.reactor_join),
                worker_joins: parts.compute_joins,
                worker_metrics: parts.metrics,
                server,
                snapshot_join: None,
                graceful: true,
            });
        }
        Self::spawn_pool(server, listener, addr, shutdown)
    }

    /// Blocking worker-pool serving (the pre-reactor shape; the only shape
    /// on non-Linux targets).
    fn spawn_pool(
        server: Arc<AuthServer>,
        listener: TcpListener,
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
    ) -> Result<ServerHandle, NetAuthError> {
        let worker_count = server.config.workers.max(1);
        let (tx, rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(server.config.pending_connections.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut worker_metrics = Vec::with_capacity(worker_count);
        let mut worker_joins = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let metrics = Arc::new(WorkerMetrics::default());
            worker_metrics.push(Arc::clone(&metrics));
            let server = Arc::clone(&server);
            let rx = Arc::clone(&rx);
            let shutdown = Arc::clone(&shutdown);
            worker_joins.push(
                std::thread::Builder::new()
                    .name(format!("gp-auth-worker-{index}"))
                    .spawn(move || worker_loop(&server, &rx, &shutdown, &metrics))
                    .map_err(NetAuthError::Io)?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let write_timeout = server.config.write_timeout;
        let accept_join = std::thread::Builder::new()
            .name("gp-auth-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(SHUTDOWN_POLL));
                    let _ = stream
                        .set_write_timeout((!write_timeout.is_zero()).then_some(write_timeout));
                    // Blocking send = backpressure once `pending_connections`
                    // connections are queued — the accept thread parks on the
                    // channel instead of spin-sleeping.  Shutdown unblocks it:
                    // the workers exit (they poll the flag every 50 ms), the
                    // receiver drops, and the send fails.
                    if tx.send(stream).is_err() {
                        return;
                    }
                }
                // `tx` drops here: workers drain the queue and exit.
            })
            .map_err(NetAuthError::Io)?;

        Ok(ServerHandle {
            addr,
            shutdown,
            accept_join: Some(accept_join),
            worker_joins,
            worker_metrics,
            server,
            snapshot_join: None,
            graceful: true,
        })
    }

    /// Serve one connection's request pipeline over arbitrary transports
    /// until EOF, `Quit`, shutdown, or an unrecoverable framing error.
    ///
    /// Reads are buffered: after the first (blocking) frame of a turn, any
    /// further frames already buffered — up to
    /// [`ServerConfig::pipeline_max`] — are drained and answered together,
    /// in order, with the whole turn's login hashes batched through the
    /// [`BatchVerifier`].  A frame that fails its integrity check fails
    /// *only that request* (the length prefix keeps the stream in sync):
    /// the server answers it with a protocol error and keeps serving,
    /// giving up only after 32 consecutive bad frames
    /// (`MAX_CONSECUTIVE_PROTOCOL_ERRORS`).
    pub fn serve_streams<R: Read, W: Write>(
        &self,
        reader: R,
        writer: W,
        shutdown: &AtomicBool,
        metrics: &WorkerMetrics,
    ) -> Result<(), NetAuthError> {
        let mut reader = FrameReader::new(BufReader::new(reader));
        let mut writer = FrameWriter::new(BufWriter::new(writer));
        let mut scratch = VerifyScratch::new();
        let mut consecutive_errors = 0u32;

        loop {
            // Block (with shutdown polling) for the turn's first frame.
            // With a bounded pool a connection occupies its worker, so an
            // idle peer is dropped after `idle_timeout` — otherwise
            // `workers` silent connections would starve the whole server.
            let idle_since = std::time::Instant::now();
            let first = loop {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                match reader.read_frame() {
                    Ok(frame) => break Some(frame),
                    Err(NetAuthError::UnexpectedEof) => return Ok(()),
                    Err(NetAuthError::IntegrityFailure) => break None,
                    Err(NetAuthError::Io(e))
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if !self.config.idle_timeout.is_zero()
                            && idle_since.elapsed() >= self.config.idle_timeout
                        {
                            return Ok(());
                        }
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            };

            // Drain whatever else the pipeline already delivered.
            let mut frames = std::collections::VecDeque::from(vec![first]);
            let mut fatal: Option<NetAuthError> = None;
            while frames.len() < self.config.pipeline_max.max(1) && reader.frame_buffered() {
                match reader.read_frame() {
                    Ok(frame) => frames.push_back(Some(frame)),
                    Err(NetAuthError::IntegrityFailure) => frames.push_back(None),
                    // Answer what we have before surfacing the failure.
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                }
            }

            // Prepare / batch-hash / settle, repeating while `prepare_turn`
            // stops at a per-account write barrier with frames queued.
            let mut quitting = false;
            while !frames.is_empty() && !quitting {
                let prepared =
                    self.prepare_turn(&mut frames, &mut scratch, metrics, &mut consecutive_errors);
                if prepared.planned.is_empty() && prepared.jobs.is_empty() {
                    if let Some(username) = prepared.parked {
                        // The turn opened on a login racing another
                        // connection's in-flight enroll for the same
                        // account: wait (shutdown-aware) for its group
                        // commit, then re-prepare the queued frames.
                        if shutdown.load(Ordering::SeqCst) {
                            return Ok(());
                        }
                        self.pending.wait_clear(&username, SHUTDOWN_POLL);
                        continue;
                    }
                }
                let digests = self.verifier.submit(prepared.jobs);
                quitting = prepared.quitting;
                for response in self.settle_responses(prepared.planned, &digests) {
                    writer.write_frame_buffered(&response.encode())?;
                    metrics.requests.fetch_add(1, Ordering::Relaxed);
                }
            }
            writer.flush()?;

            if quitting {
                return Ok(());
            }
            if let Some(e) = fatal {
                return Err(e);
            }
            if consecutive_errors >= MAX_CONSECUTIVE_PROTOCOL_ERRORS {
                return Err(NetAuthError::Malformed {
                    reason: "too many consecutive protocol errors".into(),
                });
            }
        }
    }

    /// Serve a single TCP connection (worker entry point).
    fn serve_connection(
        &self,
        stream: TcpStream,
        shutdown: &AtomicBool,
        metrics: &WorkerMetrics,
    ) -> Result<(), NetAuthError> {
        let reader_stream = stream.try_clone()?;
        self.serve_streams(reader_stream, stream, shutdown, metrics)
    }
}

/// Background compaction loop: every `snapshot_interval`, snapshot the
/// shards whose WAL grew past the threshold.  Errors are dropped — the
/// next tick retries, and the WAL itself keeps every acked mutation safe
/// in the meantime.
fn snapshot_loop(
    store: &ShardedPasswordStore,
    durability: &DurabilityConfig,
    shutdown: &AtomicBool,
) {
    let interval = durability.snapshot_interval.max(Duration::from_millis(1));
    let mut last = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(SHUTDOWN_POLL.min(interval));
        if last.elapsed() >= interval {
            let _ = store.snapshot_if_past(durability.snapshot_threshold_bytes);
            last = Instant::now();
        }
    }
}

/// Pool worker: pull connections from the shared queue until shutdown.
fn worker_loop(
    server: &AuthServer,
    rx: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    metrics: &WorkerMetrics,
) {
    loop {
        let received = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv_timeout(SHUTDOWN_POLL)
        };
        match received {
            Ok(stream) => {
                metrics.connections.fetch_add(1, Ordering::Relaxed);
                let _ = server.serve_connection(stream, shutdown, metrics);
            }
            Err(RecvTimeoutError::Timeout) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Handle to a running server; shuts the server down (gracefully) when
/// dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
    worker_joins: Vec<JoinHandle<()>>,
    worker_metrics: Vec<Arc<WorkerMetrics>>,
    server: Arc<AuthServer>,
    snapshot_join: Option<JoinHandle<()>>,
    /// Whether shutdown performs the final durable compaction.
    /// [`ServerHandle::abort`] clears it to simulate a crash.
    graceful: bool,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server behind this handle (store, lockout, config access).
    pub fn server(&self) -> &AuthServer {
        &self.server
    }

    /// Aggregate serving statistics: per-worker counters, per-shard store
    /// snapshots and batch-verifier coalescing counters.
    pub fn stats(&self) -> ServerStats {
        self.server.stats_with_workers(
            self.worker_metrics
                .iter()
                .enumerate()
                .map(|(i, m)| m.snapshot(i))
                .collect(),
        )
    }

    /// Graceful shutdown: stop accepting, let every worker finish the
    /// connection it is serving, join the pool, and — on a durable store
    /// — compact every shard into a final atomic snapshot.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Crash-simulation shutdown: stop the threads but *skip* the final
    /// snapshot compaction, leaving the durability directory exactly as
    /// the last acknowledged mutation left it (snapshots + WAL tails, a
    /// torn tail included if one exists).  The crash-recovery tests use
    /// this to assert that recovery — not an orderly save — restores
    /// every acked account.
    pub fn abort(mut self) {
        self.graceful = false;
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
        for join in self.worker_joins.drain(..) {
            let _ = join.join();
        }
        if let Some(join) = self.snapshot_join.take() {
            let _ = join.join();
        }
        if self.graceful {
            // Workers are parked: no writer races the final flush. Force
            // any unsynced Batch(n) WAL tail to stable storage *first*, so
            // the last sub-batch survives even if the compaction below
            // fails partway; then compact. In-memory stores no-op both.
            let _ = self.server.store.sync_wals();
            let _ = self.server.store.snapshot_all();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::Point;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(40.0, 50.0),
            Point::new(130.0, 210.0),
            Point::new(305.0, 70.0),
            Point::new(410.0, 300.0),
            Point::new(220.0, 145.0),
        ]
    }

    fn server() -> AuthServer {
        AuthServer::new(ServerConfig::fast_for_tests())
    }

    #[test]
    fn enroll_then_login_accepted() {
        let server = server();
        let r = server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(r, ServerMessage::EnrollOk);
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks().iter().map(|p| p.offset(5.0, -5.0)).collect(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
    }

    #[test]
    fn duplicate_enrollment_reports_error() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let r = server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert!(matches!(r, ServerMessage::Error { .. }));
    }

    #[test]
    fn failed_logins_lock_the_account() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-30.0, -30.0)).collect();
        for attempt in 1..=3u32 {
            let r = server.handle_message(ClientMessage::Login {
                username: "alice".into(),
                clicks: wrong.clone(),
            });
            assert_eq!(
                r,
                ServerMessage::LoginResult {
                    decision: LoginDecision::Rejected,
                    failures: attempt
                }
            );
        }
        // Fourth attempt — even with the correct password — is locked out.
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::LockedOut,
                failures: 3
            }
        );
        // An administrative reset restores access.
        server.lockout().reset("alice");
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
    }

    #[test]
    fn unknown_account_is_an_error_and_does_not_lock() {
        let server = server();
        let r = server.handle_message(ClientMessage::Login {
            username: "ghost".into(),
            clicks: clicks(),
        });
        assert!(matches!(r, ServerMessage::Error { .. }));
        assert!(!server.lockout().is_locked("ghost"));
    }

    #[test]
    fn get_config_reports_scheme_and_click_count() {
        let server = server();
        let r = server.handle_message(ClientMessage::GetConfig);
        assert_eq!(
            r,
            ServerMessage::Config {
                scheme: "centered:9".into(),
                clicks: 5
            }
        );
    }

    #[test]
    fn structurally_invalid_login_counts_as_failure() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: vec![Point::new(1.0, 1.0)], // wrong click count
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Rejected,
                failures: 1
            }
        );
    }

    /// Build the wire bytes of a request pipeline.
    fn pipeline_bytes(messages: &[ClientMessage]) -> Vec<u8> {
        let mut bytes = Vec::new();
        let mut writer = FrameWriter::new(&mut bytes);
        for m in messages {
            writer.write_frame(&m.encode()).unwrap();
        }
        bytes
    }

    /// Decode every response frame the server wrote.
    fn decode_responses(bytes: &[u8]) -> Vec<ServerMessage> {
        let mut reader = FrameReader::new(std::io::Cursor::new(bytes));
        let mut responses = Vec::new();
        while let Ok(frame) = reader.read_frame() {
            responses.push(ServerMessage::decode(frame).unwrap());
        }
        responses
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let server = server();
        let requests: Vec<ClientMessage> = vec![
            ClientMessage::GetConfig,
            ClientMessage::Enroll {
                username: "alice".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "alice".into(),
                clicks: clicks(),
            },
            ClientMessage::Login {
                username: "alice".into(),
                clicks: clicks().iter().map(|p| p.offset(-30.0, -30.0)).collect(),
            },
            ClientMessage::Login {
                username: "alice".into(),
                clicks: clicks(),
            },
        ];
        let input = pipeline_bytes(&requests);
        let mut output = Vec::new();
        let metrics = WorkerMetrics::default();
        server
            .serve_streams(
                std::io::Cursor::new(input),
                &mut output,
                &AtomicBool::new(false),
                &metrics,
            )
            .unwrap();
        let responses = decode_responses(&output);
        assert_eq!(responses.len(), 5);
        assert!(matches!(responses[0], ServerMessage::Config { .. }));
        assert_eq!(responses[1], ServerMessage::EnrollOk);
        assert_eq!(
            responses[2],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert_eq!(
            responses[3],
            ServerMessage::LoginResult {
                decision: LoginDecision::Rejected,
                failures: 1
            }
        );
        assert_eq!(
            responses[4],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert_eq!(metrics.snapshot(0).requests, 5);
        assert_eq!(metrics.snapshot(0).logins, 3);
    }

    #[test]
    fn pipelined_lockout_matches_sequential_semantics() {
        // Five wrong attempts in one pipeline: the first three are
        // rejected with rising failure counts, the rest see the lock.
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-30.0, -30.0)).collect();
        let requests: Vec<ClientMessage> = (0..5)
            .map(|_| ClientMessage::Login {
                username: "alice".into(),
                clicks: wrong.clone(),
            })
            .collect();
        let input = pipeline_bytes(&requests);
        let mut output = Vec::new();
        server
            .serve_streams(
                std::io::Cursor::new(input),
                &mut output,
                &AtomicBool::new(false),
                &WorkerMetrics::default(),
            )
            .unwrap();
        let responses = decode_responses(&output);
        assert_eq!(
            responses,
            vec![
                ServerMessage::LoginResult {
                    decision: LoginDecision::Rejected,
                    failures: 1
                },
                ServerMessage::LoginResult {
                    decision: LoginDecision::Rejected,
                    failures: 2
                },
                ServerMessage::LoginResult {
                    decision: LoginDecision::Rejected,
                    failures: 3
                },
                ServerMessage::LoginResult {
                    decision: LoginDecision::LockedOut,
                    failures: 3
                },
                ServerMessage::LoginResult {
                    decision: LoginDecision::LockedOut,
                    failures: 3
                },
            ]
        );
    }

    #[test]
    fn quit_mid_pipeline_stops_processing_later_requests() {
        let server = server();
        let requests = vec![
            ClientMessage::GetConfig,
            ClientMessage::Quit,
            ClientMessage::Enroll {
                username: "never".into(),
                clicks: clicks(),
            },
        ];
        let input = pipeline_bytes(&requests);
        let mut output = Vec::new();
        server
            .serve_streams(
                std::io::Cursor::new(input),
                &mut output,
                &AtomicBool::new(false),
                &WorkerMetrics::default(),
            )
            .unwrap();
        let responses = decode_responses(&output);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[1], ServerMessage::Goodbye);
        assert_eq!(server.store().len(), 0, "post-quit enroll never ran");
    }

    #[test]
    fn corrupted_mid_pipeline_frame_fails_one_request_without_desync() {
        use crate::framing::FaultyBuffer;
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        // Three pipelined logins, the middle frame's payload corrupted.
        let mut faulty = FaultyBuffer::default().corrupt_frame_payload(1);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            for _ in 0..3 {
                writer
                    .write_frame(
                        &ClientMessage::Login {
                            username: "alice".into(),
                            clicks: clicks(),
                        }
                        .encode(),
                    )
                    .unwrap();
            }
        }
        let mut output = Vec::new();
        let metrics = WorkerMetrics::default();
        server
            .serve_streams(
                std::io::Cursor::new(faulty.bytes),
                &mut output,
                &AtomicBool::new(false),
                &metrics,
            )
            .unwrap();
        let responses = decode_responses(&output);
        assert_eq!(responses.len(), 3, "every request gets a response");
        assert_eq!(
            responses[0],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
        assert!(
            matches!(&responses[1], ServerMessage::Error { reason } if reason.contains("integrity")),
            "corrupt frame answered with a protocol error: {:?}",
            responses[1]
        );
        assert_eq!(
            responses[2],
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            },
            "the pipeline stays in sync after the corrupt frame"
        );
        assert_eq!(metrics.snapshot(0).protocol_errors, 1);
        assert!(!server.lockout().is_locked("alice"));
    }

    #[test]
    fn dropped_mid_pipeline_frame_loses_only_that_request() {
        use crate::framing::FaultyBuffer;
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let mut faulty = FaultyBuffer::default().drop_frame(1);
        {
            let mut writer = FrameWriter::new(&mut faulty);
            for _ in 0..3 {
                writer
                    .write_frame(
                        &ClientMessage::Login {
                            username: "alice".into(),
                            clicks: clicks(),
                        }
                        .encode(),
                    )
                    .unwrap();
            }
        }
        let mut output = Vec::new();
        server
            .serve_streams(
                std::io::Cursor::new(faulty.bytes),
                &mut output,
                &AtomicBool::new(false),
                &WorkerMetrics::default(),
            )
            .unwrap();
        let responses = decode_responses(&output);
        assert_eq!(responses.len(), 2, "dropped request simply has no response");
        for r in &responses {
            assert_eq!(
                *r,
                ServerMessage::LoginResult {
                    decision: LoginDecision::Accepted,
                    failures: 0
                }
            );
        }
    }

    #[test]
    fn idle_connection_is_dropped_and_frees_its_worker() {
        use std::io::Read as _;
        // One worker and a short idle timeout: a silent connection must be
        // cut loose instead of starving the pool (slowloris defense).
        let config = ServerConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(150),
            ..ServerConfig::fast_for_tests()
        };
        let handle = AuthServer::new(config).spawn().expect("spawn server");
        let mut idle = TcpStream::connect(handle.addr()).expect("connect");
        idle.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // The server closes the idle connection: read returns EOF.
        let mut buf = [0u8; 1];
        let got = idle.read(&mut buf).expect("read after server close");
        assert_eq!(got, 0, "idle connection must be closed by the server");
        // And the single worker is free to serve a real client.
        let mut client = crate::client::AuthClient::connect(handle.addr()).expect("connect");
        let (scheme, clicks) = client.get_config().expect("get config");
        assert_eq!(scheme, "centered:9");
        assert_eq!(clicks, 5);
        client.quit().unwrap();
        handle.shutdown();
    }

    #[test]
    fn batched_pipeline_hashes_through_the_batch_verifier() {
        let server = server();
        for i in 0..8 {
            server.handle_message(ClientMessage::Enroll {
                username: format!("user{i}"),
                clicks: clicks(),
            });
        }
        let baseline_attempts = server.verifier().stats().attempts;
        let requests: Vec<ClientMessage> = (0..8)
            .map(|i| ClientMessage::Login {
                username: format!("user{i}"),
                clicks: clicks(),
            })
            .collect();
        let input = pipeline_bytes(&requests);
        let mut output = Vec::new();
        server
            .serve_streams(
                std::io::Cursor::new(input),
                &mut output,
                &AtomicBool::new(false),
                &WorkerMetrics::default(),
            )
            .unwrap();
        assert_eq!(decode_responses(&output).len(), 8);
        let stats = server.verifier().stats();
        assert_eq!(stats.attempts - baseline_attempts, 8);
        assert!(
            stats.max_run >= 8,
            "one turn's logins coalesce into one run: {stats:?}"
        );
    }

    #[test]
    fn login_racing_an_uncommitted_enroll_parks_while_unrelated_logins_proceed() {
        use std::io::{Read as _, Write as _};
        let config = ServerConfig {
            serving: ServingMode::WorkerPool,
            workers: 2,
            ..ServerConfig::fast_for_tests()
        };
        let handle = AuthServer::new(config).spawn().expect("spawn server");
        {
            let mut client = crate::client::AuthClient::connect(handle.addr()).unwrap();
            client.enroll("carol", &clicks()).unwrap();
            client.quit().unwrap();
        }
        // Hold victor's account barrier open, exactly as if his
        // enrollment's group commit were still in flight on another
        // connection.
        handle.server().pending().begin("victor");

        let mut racing = TcpStream::connect(handle.addr()).unwrap();
        racing
            .set_read_timeout(Some(Duration::from_millis(400)))
            .unwrap();
        let mut request = Vec::new();
        FrameWriter::new(&mut request)
            .write_frame(
                &ClientMessage::Login {
                    username: "victor".into(),
                    clicks: clicks(),
                }
                .encode(),
            )
            .unwrap();
        racing.write_all(&request).unwrap();

        // An unrelated account's login flows around the parked one.
        let mut other = crate::client::AuthClient::connect(handle.addr()).unwrap();
        let (decision, _) = other.login("carol", &clicks()).unwrap();
        assert_eq!(decision, LoginDecision::Accepted);
        other.quit().unwrap();

        // The racing login is still parked: nothing on the wire.
        let mut buf = [0u8; 1];
        match racing.read(&mut buf) {
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            other => panic!("parked login answered before the barrier cleared: {other:?}"),
        }

        // Lift the barrier: the parked worker wakes and answers (Rejected
        // — the account was never actually enrolled in this test).
        handle.server().pending().end("victor");
        racing
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let frame = FrameReader::new(&mut racing).read_frame().unwrap();
        match ServerMessage::decode(frame).unwrap() {
            ServerMessage::Error { reason } => {
                assert!(reason.contains("unknown account"), "{reason}");
            }
            other => panic!("unexpected response: {other:?}"),
        }
        handle.shutdown();
    }
}
