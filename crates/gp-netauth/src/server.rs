//! Threaded TCP authentication server.
//!
//! The server owns a [`GraphicalPasswordSystem`], a [`PasswordStore`] and a
//! [`LockoutTracker`].  Request handling is a pure function
//! ([`AuthServer::handle_message`]) so the protocol logic is unit-testable
//! without sockets; [`AuthServer::spawn`] wraps it in an accept loop with
//! one thread per connection.

use crate::error::NetAuthError;
use crate::framing::{FrameReader, FrameWriter};
use crate::lockout::LockoutTracker;
use crate::protocol::{ClientMessage, LoginDecision, ServerMessage};
use gp_geometry::ImageDims;
use gp_passwords::{
    DiscretizationConfig, GraphicalPasswordSystem, PasswordError, PasswordPolicy, PasswordStore,
};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Image dimensions the deployment uses.
    pub image: ImageDims,
    /// Discretization scheme and tolerance.
    pub discretization: DiscretizationConfig,
    /// Clicks per password.
    pub clicks: usize,
    /// Hash iteration count for stored passwords.
    pub hash_iterations: u32,
    /// Consecutive failures before an account locks (0 = never).
    pub max_failures: u32,
}

impl ServerConfig {
    /// A PassPoints-style deployment with Centered Discretization (r = 9)
    /// on the study image, three-strikes lockout.
    pub fn study_default() -> Self {
        Self {
            image: ImageDims::STUDY,
            discretization: DiscretizationConfig::centered(9),
            clicks: 5,
            hash_iterations: 1000,
            max_failures: 3,
        }
    }

    /// The same deployment with a reduced iteration count, for tests.
    pub fn fast_for_tests() -> Self {
        Self {
            hash_iterations: 2,
            ..Self::study_default()
        }
    }
}

/// The authentication server.
#[derive(Debug)]
pub struct AuthServer {
    config: ServerConfig,
    system: GraphicalPasswordSystem,
    store: Arc<PasswordStore>,
    lockout: Arc<LockoutTracker>,
}

impl AuthServer {
    /// Create a server with an empty account store.
    pub fn new(config: ServerConfig) -> Self {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::new(config.image, config.clicks),
            config.discretization,
            config.hash_iterations,
        );
        let lockout = Arc::new(LockoutTracker::new(config.max_failures));
        Self {
            config,
            system,
            store: Arc::new(PasswordStore::new()),
            lockout,
        }
    }

    /// The account store (shared; useful for pre-seeding accounts in tests
    /// and examples).
    pub fn store(&self) -> Arc<PasswordStore> {
        Arc::clone(&self.store)
    }

    /// The lockout tracker.
    pub fn lockout(&self) -> Arc<LockoutTracker> {
        Arc::clone(&self.lockout)
    }

    /// The underlying password system.
    pub fn system(&self) -> &GraphicalPasswordSystem {
        &self.system
    }

    /// Handle a single request (protocol logic, no I/O).
    pub fn handle_message(&self, message: ClientMessage) -> ServerMessage {
        match message {
            ClientMessage::GetConfig => ServerMessage::Config {
                scheme: self.config.discretization.to_header(),
                clicks: self.config.clicks as u32,
            },
            ClientMessage::Quit => ServerMessage::Goodbye,
            ClientMessage::Enroll { username, clicks } => {
                match self.store.enroll(&self.system, &username, &clicks) {
                    Ok(()) => ServerMessage::EnrollOk,
                    Err(e) => ServerMessage::Error {
                        reason: e.to_string(),
                    },
                }
            }
            ClientMessage::Login { username, clicks } => {
                if self.lockout.is_locked(&username) {
                    return ServerMessage::LoginResult {
                        decision: LoginDecision::LockedOut,
                        failures: self.lockout.failures(&username),
                    };
                }
                match self.store.verify(&self.system, &username, &clicks) {
                    Ok(true) => {
                        self.lockout.record_success(&username);
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Accepted,
                            failures: 0,
                        }
                    }
                    Ok(false) => {
                        let failures = self.lockout.record_failure(&username);
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Rejected,
                            failures,
                        }
                    }
                    // Structurally invalid attempts (wrong click count,
                    // clicks outside the image) are failures too; unknown
                    // accounts are reported as errors without consuming a
                    // failure (no account to lock).
                    Err(PasswordError::UnknownAccount { username }) => ServerMessage::Error {
                        reason: format!("unknown account {username:?}"),
                    },
                    Err(_) => {
                        let failures = self.lockout.record_failure(&username);
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Rejected,
                            failures,
                        }
                    }
                }
            }
        }
    }

    /// Bind to `127.0.0.1:0` and serve connections on background threads
    /// until the returned handle is shut down or dropped.
    pub fn spawn(self) -> Result<ServerHandle, NetAuthError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = Arc::new(self);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_server = Arc::clone(&server);
        let join = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let server = Arc::clone(&accept_server);
                        workers.push(std::thread::spawn(move || {
                            let _ = server.serve_connection(stream);
                        }));
                    }
                    Err(_) => break,
                }
            }
            for worker in workers {
                let _ = worker.join();
            }
        });
        Ok(ServerHandle {
            addr,
            shutdown,
            join: Some(join),
        })
    }

    /// Serve a single connection until the client quits or the stream
    /// fails.
    fn serve_connection(&self, stream: TcpStream) -> Result<(), NetAuthError> {
        let reader_stream = stream.try_clone()?;
        let mut reader = FrameReader::new(reader_stream);
        let mut writer = FrameWriter::new(stream);
        loop {
            let frame = match reader.read_frame() {
                Ok(frame) => frame,
                Err(NetAuthError::UnexpectedEof) => return Ok(()),
                Err(e) => return Err(e),
            };
            let response = match ClientMessage::decode(frame) {
                Ok(message) => {
                    let quitting = message == ClientMessage::Quit;
                    let response = self.handle_message(message);
                    writer.write_frame(&response.encode())?;
                    if quitting {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => ServerMessage::Error {
                    reason: format!("bad request: {e}"),
                },
            };
            writer.write_frame(&response.encode())?;
        }
    }
}

/// Handle to a running server; shuts the server down when dropped.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_geometry::Point;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(40.0, 50.0),
            Point::new(130.0, 210.0),
            Point::new(305.0, 70.0),
            Point::new(410.0, 300.0),
            Point::new(220.0, 145.0),
        ]
    }

    fn server() -> AuthServer {
        AuthServer::new(ServerConfig::fast_for_tests())
    }

    #[test]
    fn enroll_then_login_accepted() {
        let server = server();
        let r = server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(r, ServerMessage::EnrollOk);
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks().iter().map(|p| p.offset(5.0, -5.0)).collect(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
    }

    #[test]
    fn duplicate_enrollment_reports_error() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let r = server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert!(matches!(r, ServerMessage::Error { .. }));
    }

    #[test]
    fn failed_logins_lock_the_account() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let wrong: Vec<Point> = clicks().iter().map(|p| p.offset(-30.0, -30.0)).collect();
        for attempt in 1..=3u32 {
            let r = server.handle_message(ClientMessage::Login {
                username: "alice".into(),
                clicks: wrong.clone(),
            });
            assert_eq!(
                r,
                ServerMessage::LoginResult {
                    decision: LoginDecision::Rejected,
                    failures: attempt
                }
            );
        }
        // Fourth attempt — even with the correct password — is locked out.
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::LockedOut,
                failures: 3
            }
        );
        // An administrative reset restores access.
        server.lockout().reset("alice");
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: clicks(),
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Accepted,
                failures: 0
            }
        );
    }

    #[test]
    fn unknown_account_is_an_error_and_does_not_lock() {
        let server = server();
        let r = server.handle_message(ClientMessage::Login {
            username: "ghost".into(),
            clicks: clicks(),
        });
        assert!(matches!(r, ServerMessage::Error { .. }));
        assert!(!server.lockout().is_locked("ghost"));
    }

    #[test]
    fn get_config_reports_scheme_and_click_count() {
        let server = server();
        let r = server.handle_message(ClientMessage::GetConfig);
        assert_eq!(
            r,
            ServerMessage::Config {
                scheme: "centered:9".into(),
                clicks: 5
            }
        );
    }

    #[test]
    fn structurally_invalid_login_counts_as_failure() {
        let server = server();
        server.handle_message(ClientMessage::Enroll {
            username: "alice".into(),
            clicks: clicks(),
        });
        let r = server.handle_message(ClientMessage::Login {
            username: "alice".into(),
            clicks: vec![Point::new(1.0, 1.0)], // wrong click count
        });
        assert_eq!(
            r,
            ServerMessage::LoginResult {
                decision: LoginDecision::Rejected,
                failures: 1
            }
        );
    }
}
