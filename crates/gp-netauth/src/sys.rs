//! Minimal Linux `epoll`/`eventfd` bindings for the reactor.
//!
//! The reactor needs exactly four kernel facilities: an epoll instance
//! (`epoll_create1`), interest registration (`epoll_ctl`), readiness
//! waiting (`epoll_wait`) and a cross-thread wakeup fd (`eventfd`).  std
//! already links libc, so declaring the symbols directly costs nothing and
//! keeps the workspace dependency-free; this module is the only place in
//! the crate allowed to use `unsafe`, and it exposes only safe RAII
//! wrappers ([`Epoll`], [`EventFd`]) whose invariants are local:
//!
//! * every fd created here is closed exactly once, in `Drop`;
//! * `epoll_wait` writes into a caller-sized buffer and we only read back
//!   the kernel-reported prefix;
//! * `eventfd` reads/writes use an 8-byte integer, as the kernel requires.
//!
//! Interest is **level-triggered** (the epoll default): the reactor
//! deliberately relies on "data still buffered ⇒ next wait returns the fd"
//! to keep its per-connection state machines simple.
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

// Constants from <sys/epoll.h> / <sys/eventfd.h> (Linux ABI, stable).
/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (peer closed both directions).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its writing half (half-close).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// The kernel's `struct epoll_event`.  Packed on x86-64 (the kernel ABI
/// packs it there so 32-bit and 64-bit layouts agree); natural layout on
/// other architectures.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-chosen token identifying the registered fd.
    pub token: u64,
}

impl EpollEvent {
    /// An empty slot for the `epoll_wait` output buffer.
    pub const fn zeroed() -> Self {
        Self {
            events: 0,
            token: 0,
        }
    }

    /// Ready-event mask (copied by value — callers must never take a
    /// reference into the possibly-packed layout).
    pub fn events(&self) -> u32 {
        self.events
    }

    /// Registration token (copied by value).
    pub fn token(&self) -> u64 {
        self.token
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance (RAII: closed on drop).
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events, token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Register `fd` with an interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Change the interest mask/token of a registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregister a fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // The event argument is ignored for DEL (must be non-null only on
        // pre-2.6.9 kernels; passing one is harmless everywhere).
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness, filling `events` from the
    /// front.  Returns how many entries are valid.  Retries on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        debug_assert!(!events.is_empty(), "need at least one event slot");
        loop {
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd` used to wake the reactor from other threads
/// (hash-compute completions, shutdown).
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Add 1 to the counter, making the fd readable.  Called from compute
    /// threads; never blocks (the counter saturating at `u64::MAX - 1`
    /// returns `EAGAIN`, which still leaves the fd readable, so the wakeup
    /// is not lost).
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Reset the counter to 0 (reactor side, after waking).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // Nonblocking: a single read clears the whole counter; EAGAIN
        // means it was already 0.
        let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_clears_it() {
        let epoll = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        epoll.add(efd.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        // Nothing signalled yet: zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        efd.signal();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].events() & EPOLLIN, 0);

        // One drain clears the whole counter (both signals).
        efd.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_tcp_readability_with_tokens() {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let epoll = Epoll::new().unwrap();
        epoll
            .add(listener.as_raw_fd(), EPOLLIN, 42)
            .expect("register listener");

        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "no pending accept");

        let mut client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);

        // Accept, register the server end, and check data readiness.
        let (server_end, _) = listener.accept().unwrap();
        epoll.add(server_end.as_raw_fd(), EPOLLIN, 43).unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].token() == 43));

        // Modify to writable interest: an idle socket is writable.
        epoll.modify(server_end.as_raw_fd(), EPOLLOUT, 44).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert!((0..n).any(|i| events[i].token() == 44 && events[i].events() & EPOLLOUT != 0));

        epoll.delete(server_end.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "deregistered");
    }
}
