//! Kill-under-load fault harness for the replicated cluster.
//!
//! Each scenario spawns a real N-node loopback cluster (per-node durable
//! stores, WAL-streaming sync replication, ring routing) and injects a
//! fault while authload-style enrollment traffic is running:
//!
//! * **kill** — [`Cluster::kill`] aborts a primary mid-burst (no flush,
//!   no farewell: `ServerHandle::abort` plus a dead replication
//!   listener).  The invariant under test is the headline one: **no
//!   enrollment that was acknowledged to a client is ever lost** — after
//!   the kill every acked account still logs in on the survivors.
//! * **connection drops** — every replicator's outbound connections are
//!   torn down mid-stream; the next record must reconnect transparently.
//! * **partition** — a node's replication listener is severed while its
//!   auth listener stays up; peers evict it and re-route replicas, and a
//!   subsequent primary kill still loses nothing.
//! * **restart** — the operator runbook: a killed node crash-recovers
//!   from its own WAL + snapshots, rejoins every survivor's ring, and
//!   the cluster serves all accounts, including those enrolled while it
//!   was dead.
//! * **rejoin completeness** (`rejoin_*` scenarios, run as their own CI
//!   leg) — the stronger, *local* invariant: after a kill + rejoin under
//!   load, the restarted node's own store holds **every** acked record
//!   it backs under the full-membership ring (not merely "some replica
//!   answers").  Variants interrupt the catch-up transfer mid-stream and
//!   inject record-level divergence for anti-entropy to repair.
//!
//! Set `GP_CLUSTER_LOG_DIR` to keep per-node stores and the cluster
//! event log under that directory for post-mortem (CI uploads it as an
//! artifact when a scenario fails).

use gp_geometry::Point;
use gp_netauth::cluster::{Cluster, ClusterClient};
use gp_netauth::replication::{CatchupOptions, ReplicatorConfig};
use gp_netauth::server::ServerConfig;
use gp_netauth::LoginDecision;
use gp_passwords::HashRing;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic per-account clicks, derived from the username so any
/// thread (or a later verification pass) can recompute them.
fn clicks_for(name: &str) -> Vec<Point> {
    let seed = fnv(name);
    (0..5)
        .map(|i| {
            let x = 40.0 + ((seed >> (i * 7)) % 360) as f64;
            let y = 30.0 + ((seed >> (i * 9 + 3)) % 260) as f64;
            Point::new(x, y)
        })
        .collect()
}

/// Scenario root: under `GP_CLUSTER_LOG_DIR` when set (so CI can pick the
/// node stores + event log up as artifacts on failure), else the temp dir.
fn data_root(tag: &str) -> PathBuf {
    let base = std::env::var_os("GP_CLUSTER_LOG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!("gp-cluster-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cluster_of(nodes: usize, tag: &str) -> (Cluster, PathBuf) {
    let root = data_root(tag);
    let cluster = Cluster::spawn(
        nodes,
        ServerConfig::fast_for_tests(),
        ReplicatorConfig::default(),
        &root,
    )
    .expect("spawn cluster");
    (cluster, root)
}

/// Names acked so far, shared between enroller threads and the harness.
type AckLog = Arc<Mutex<Vec<String>>>;

/// Spawn `threads` enrollment workers, each with its own routing client,
/// pushing every acknowledged username into the shared log until `stop`.
fn spawn_load(
    members: &[(String, std::net::SocketAddr)],
    threads: usize,
    acked: &AckLog,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|t| {
            let members = members.to_vec();
            let acked = Arc::clone(acked);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut client = ClusterClient::new(&members);
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let name = format!("t{t}-user{i}");
                    client
                        .enroll(&name, &clicks_for(&name))
                        .unwrap_or_else(|e| panic!("enroll {name} must survive faults: {e}"));
                    // Only names the cluster acknowledged enter the log —
                    // these are the ones that must never be lost.
                    acked.lock().unwrap().push(name);
                    i += 1;
                }
            })
        })
        .collect()
}

fn acked_count(acked: &AckLog) -> usize {
    acked.lock().unwrap().len()
}

fn wait_for_acks(acked: &AckLog, at_least: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while acked_count(acked) < at_least {
        assert!(
            Instant::now() < deadline,
            "load generator stalled below {at_least} acks"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Log in as every acked account through a fresh routing client over the
/// current membership; every one must be Accepted.
fn verify_every_acked_account(cluster: &Cluster, acked: &AckLog) {
    let mut client = ClusterClient::new(&cluster.members());
    let names = acked.lock().unwrap().clone();
    assert!(!names.is_empty(), "the scenario must have acked something");
    for name in &names {
        let (decision, _) = client
            .login(name, &clicks_for(name))
            .unwrap_or_else(|e| panic!("acked account {name} lost: {e}"));
        assert_eq!(
            decision,
            LoginDecision::Accepted,
            "acked account {name} must log in"
        );
    }
}

/// Assert the *local* replica-completeness invariant on node `i`: its
/// own store holds every acked account the full-membership ring says it
/// backs (as owner or backup).  This is stronger than "every account
/// still logs in somewhere" — it proves the rejoin actually transferred
/// the node's ranges, not that the other replicas are covering for it.
fn assert_local_replica_complete(cluster: &Cluster, i: usize, acked: &[String]) {
    let ids: Vec<String> = (0..cluster.len())
        .map(|j| cluster.node_id(j).to_string())
        .collect();
    let ring = HashRing::with_nodes(&ids);
    let node = cluster.node_id(i).to_string();
    let store = cluster.store(i).expect("inspected node must be live");
    let mut backed = 0usize;
    for name in acked {
        if ring.holds(name, &node) {
            backed += 1;
            assert!(
                store.get(name).is_some(),
                "{node} backs acked account {name} but its local store lacks it"
            );
        }
    }
    assert!(
        backed > 0,
        "the scenario must have acked accounts in {node}'s ranges"
    );
    cluster.log_event(&format!(
        "harness: {node} locally holds all {backed} acked accounts it backs"
    ));
}

/// The acceptance scenario: kill a primary mid-burst under concurrent
/// multi-client load; the backup promotes (ring re-resolution on both the
/// clients and the surviving replicators) and zero acked data is lost.
#[test]
fn killing_a_primary_under_load_loses_no_acked_enrollment() {
    let (mut cluster, root) = cluster_of(3, "kill");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 3, &acked, &stop);

    // Let a healthy prefix land, then pull the trigger mid-burst.
    wait_for_acks(&acked, 30);
    let before_kill = acked_count(&acked);
    cluster.kill(0);
    cluster.log_event(&format!("harness: killed node-0 after {before_kill} acks"));

    // The survivors must keep acking enrollments after the kill.
    wait_for_acks(&acked, before_kill + 30);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive the kill");
    }

    assert_eq!(cluster.members().len(), 2, "one node down, two serving");
    verify_every_acked_account(&cluster, &acked);
    cluster.log_event(&format!(
        "harness: verified all {} acked accounts after the kill",
        acked_count(&acked)
    ));
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Outbound replication connections are dropped on every node mid-burst
/// (a network blip, not a death): the next record reconnects
/// transparently, no node is evicted, and nothing acked is lost.
#[test]
fn replication_connection_drops_are_survived_without_evictions() {
    let (cluster, root) = cluster_of(3, "drops");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    for round in 0..3 {
        wait_for_acks(&acked, (round + 1) * 15);
        cluster.log_event(&format!(
            "harness: dropping all replication conns ({round})"
        ));
        for i in 0..cluster.len() {
            if let Some(replicator) = cluster.replicator(i) {
                replicator.drop_connections();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive connection drops");
    }

    // A blip is not a death: every node still considers every peer live.
    for i in 0..cluster.len() {
        let replicator = cluster.replicator(i).expect("all nodes alive");
        for j in 0..cluster.len() {
            assert!(
                replicator.is_live(cluster.node_id(j)),
                "node-{i} must not have evicted node-{j} over a reconnectable drop"
            );
        }
    }
    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Asymmetric partition: node-1's replication listener is severed while
/// its auth listener keeps serving.  Peers evict it and re-route replicas
/// to the next successor, so even a follow-up kill of node-0 loses
/// nothing: every acked account is durable on two *reachable* stores.
#[test]
fn severed_replication_reroutes_backups_so_a_later_kill_loses_nothing() {
    let (mut cluster, root) = cluster_of(3, "sever");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    wait_for_acks(&acked, 20);
    cluster.sever_replication(1);
    // Keep enrolling through the partition, then kill a primary.
    let at_sever = acked_count(&acked);
    wait_for_acks(&acked, at_sever + 20);
    cluster.kill(0);
    let at_kill = acked_count(&acked);
    wait_for_acks(&acked, at_kill + 20);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive sever + kill");
    }

    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The operator runbook, end to end: kill a node under load, let the
/// cluster absorb the failover, then restart the node from its own
/// durable directory.  It rejoins every survivor's ring and the whole
/// account population — including accounts enrolled while it was dead —
/// keeps logging in.
#[test]
fn a_restarted_node_rejoins_and_every_account_still_logs_in() {
    let (mut cluster, root) = cluster_of(3, "restart");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    wait_for_acks(&acked, 20);
    cluster.kill(2);
    let at_kill = acked_count(&acked);
    // Traffic enrolled while node-2 is dead lands entirely on the others.
    wait_for_acks(&acked, at_kill + 20);
    cluster.restart(2).expect("restart from own durable dir");
    let at_restart = acked_count(&acked);
    // And traffic after the restart may pick node-2 as primary again.
    wait_for_acks(&acked, at_restart + 20);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive kill + restart");
    }

    assert_eq!(cluster.members().len(), 3, "full strength after restart");
    for i in 0..cluster.len() {
        let replicator = cluster.replicator(i).expect("all nodes alive");
        assert!(
            replicator.is_live(cluster.node_id(2)) || i == 2,
            "node-{i} must have re-admitted node-2"
        );
    }
    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Rejoin completeness under load: enroll concurrently, kill a node, keep
/// enrolling (the dead node's ranges shift to survivors), restart it —
/// catch-up must complete before the node takes traffic — and then prove
/// the restarted node's *local* store holds every acked record it backs
/// under the full ring, including records enrolled while it was dead and
/// records enrolled concurrently with the catch-up itself.
#[test]
fn rejoin_completeness_after_catchup_under_load() {
    let (mut cluster, root) = cluster_of(3, "rejoin-complete");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 3, &acked, &stop);

    wait_for_acks(&acked, 30);
    cluster.kill(1);
    let at_kill = acked_count(&acked);
    // A solid chunk of traffic lands while node-1 is dead: these are the
    // records catch-up must transfer back.
    wait_for_acks(&acked, at_kill + 40);
    let report = cluster.restart(1).expect("restart from own durable dir");
    assert!(
        report.completed(),
        "catch-up must complete against both live peers: {report:?}"
    );
    let at_restart = acked_count(&acked);
    wait_for_acks(&acked, at_restart + 20);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive kill + rejoin");
    }

    verify_every_acked_account(&cluster, &acked);
    let names = acked.lock().unwrap().clone();
    assert_local_replica_complete(&cluster, 1, &names);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// An interrupted state transfer (the stream aborted mid-catch-up) leaves
/// the joiner consistent: the applied prefix is durable, the range is
/// *not* counted caught-up, and a retried catch-up replays idempotently
/// to full completeness.
#[test]
fn rejoin_interrupted_catchup_retries_idempotently() {
    let (mut cluster, root) = cluster_of(3, "rejoin-interrupt");
    let members = cluster.members();

    // A settled population, no concurrent load: the record counts below
    // must be exact.
    let mut client = ClusterClient::new(&members);
    let mut names = Vec::new();
    for i in 0..40u32 {
        let name = format!("steady-user{i}");
        client.enroll(&name, &clicks_for(&name)).unwrap();
        names.push(name);
    }
    cluster.kill(2);
    // Enroll more while node-2 is dead — the records catch-up must carry.
    let mut client = ClusterClient::new(&cluster.members());
    for i in 0..40u32 {
        let name = format!("while-dead-user{i}");
        client.enroll(&name, &clicks_for(&name)).unwrap();
        names.push(name);
    }

    // Interrupt the transfer after 3 records: the node comes up gated on
    // an incomplete report, with exactly the applied prefix extra.
    let aborted = cluster
        .restart_with_catchup(
            2,
            CatchupOptions {
                abort_after_records: Some(3),
                ..CatchupOptions::default()
            },
        )
        .expect("restart itself must succeed");
    assert!(
        !aborted.completed(),
        "an aborted stream must not count as caught-up: {aborted:?}"
    );

    // Retry on the live node: idempotent replay converges to complete.
    let retried = cluster.catch_up(2, CatchupOptions::default());
    assert!(retried.completed(), "retried catch-up: {retried:?}");

    verify_every_acked_account(&cluster, &Arc::new(Mutex::new(names.clone())));
    assert_local_replica_complete(&cluster, 2, &names);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Anti-entropy repairs injected record-level divergence in one round,
/// in both directions: a backup that lost a record gets it pushed back,
/// and a primary that lost a record pulls it from the backup.
#[test]
fn rejoin_anti_entropy_repairs_injected_divergence() {
    let root = data_root("rejoin-entropy");
    // Manual rounds only: a zero interval disables the background thread
    // so the injected divergence stays until *we* repair it.
    let repl_config = ReplicatorConfig {
        anti_entropy_interval: Duration::ZERO,
        ..ReplicatorConfig::default()
    };
    let cluster = Cluster::spawn(3, ServerConfig::fast_for_tests(), repl_config, &root)
        .expect("spawn cluster");
    let mut client = ClusterClient::new(&cluster.members());
    let names: Vec<String> = (0..60u32).map(|i| format!("user{i}")).collect();
    for name in &names {
        client.enroll(name, &clicks_for(name)).unwrap();
    }

    // Two accounts in the (node-0 → node-1) range: one to lose on the
    // backup (push repair), one to lose on the primary (pull repair).
    let ids: Vec<String> = (0..cluster.len())
        .map(|j| cluster.node_id(j).to_string())
        .collect();
    let ring = HashRing::with_nodes(&ids);
    let in_range: Vec<&String> = names
        .iter()
        .filter(|name| ring.replica_pair(name) == Some(("node-0", Some("node-1"))))
        .collect();
    assert!(
        in_range.len() >= 2,
        "60 accounts must land at least twice in the (node-0, node-1) range"
    );
    let (lost_on_backup, lost_on_primary) = (in_range[0].clone(), in_range[1].clone());
    assert!(cluster
        .store(1)
        .unwrap()
        .remove(&lost_on_backup)
        .expect("remove on backup"));
    assert!(cluster
        .store(0)
        .unwrap()
        .remove(&lost_on_primary)
        .expect("remove on primary"));
    cluster.log_event(&format!(
        "harness: injected divergence — {lost_on_backup} off node-1, {lost_on_primary} off node-0"
    ));

    // One round on the range's primary repairs both directions.
    let round = cluster
        .anti_entropy_round(0)
        .expect("node-0 is live")
        .clone();
    assert!(round.failed_peers.is_empty(), "{round:?}");
    assert!(round.ranges_divergent >= 1, "{round:?}");
    assert!(round.records_pushed >= 1, "push repair ran: {round:?}");
    assert!(round.records_pulled >= 1, "pull repair ran: {round:?}");
    assert!(
        cluster.store(1).unwrap().get(&lost_on_backup).is_some(),
        "push repair must restore the backup's copy"
    );
    assert!(
        cluster.store(0).unwrap().get(&lost_on_primary).is_some(),
        "pull repair must restore the primary's copy"
    );

    // A second round finds nothing left to repair in that range.
    let quiet = cluster.anti_entropy_round(0).expect("node-0 is live");
    assert_eq!(quiet.ranges_divergent, 0, "{quiet:?}");

    verify_every_acked_account(&cluster, &Arc::new(Mutex::new(names)));
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
