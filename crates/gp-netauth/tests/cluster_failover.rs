//! Kill-under-load fault harness for the replicated cluster.
//!
//! Each scenario spawns a real N-node loopback cluster (per-node durable
//! stores, WAL-streaming sync replication, ring routing) and injects a
//! fault while authload-style enrollment traffic is running:
//!
//! * **kill** — [`Cluster::kill`] aborts a primary mid-burst (no flush,
//!   no farewell: `ServerHandle::abort` plus a dead replication
//!   listener).  The invariant under test is the headline one: **no
//!   enrollment that was acknowledged to a client is ever lost** — after
//!   the kill every acked account still logs in on the survivors.
//! * **connection drops** — every replicator's outbound connections are
//!   torn down mid-stream; the next record must reconnect transparently.
//! * **partition** — a node's replication listener is severed while its
//!   auth listener stays up; peers evict it and re-route replicas, and a
//!   subsequent primary kill still loses nothing.
//! * **restart** — the operator runbook: a killed node crash-recovers
//!   from its own WAL + snapshots, rejoins every survivor's ring, and
//!   the cluster serves all accounts, including those enrolled while it
//!   was dead.
//!
//! Set `GP_CLUSTER_LOG_DIR` to keep per-node stores and the cluster
//! event log under that directory for post-mortem (CI uploads it as an
//! artifact when a scenario fails).

use gp_geometry::Point;
use gp_netauth::cluster::{Cluster, ClusterClient};
use gp_netauth::replication::ReplicatorConfig;
use gp_netauth::server::ServerConfig;
use gp_netauth::LoginDecision;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic per-account clicks, derived from the username so any
/// thread (or a later verification pass) can recompute them.
fn clicks_for(name: &str) -> Vec<Point> {
    let seed = fnv(name);
    (0..5)
        .map(|i| {
            let x = 40.0 + ((seed >> (i * 7)) % 360) as f64;
            let y = 30.0 + ((seed >> (i * 9 + 3)) % 260) as f64;
            Point::new(x, y)
        })
        .collect()
}

/// Scenario root: under `GP_CLUSTER_LOG_DIR` when set (so CI can pick the
/// node stores + event log up as artifacts on failure), else the temp dir.
fn data_root(tag: &str) -> PathBuf {
    let base = std::env::var_os("GP_CLUSTER_LOG_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!("gp-cluster-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cluster_of(nodes: usize, tag: &str) -> (Cluster, PathBuf) {
    let root = data_root(tag);
    let cluster = Cluster::spawn(
        nodes,
        ServerConfig::fast_for_tests(),
        ReplicatorConfig::default(),
        &root,
    )
    .expect("spawn cluster");
    (cluster, root)
}

/// Names acked so far, shared between enroller threads and the harness.
type AckLog = Arc<Mutex<Vec<String>>>;

/// Spawn `threads` enrollment workers, each with its own routing client,
/// pushing every acknowledged username into the shared log until `stop`.
fn spawn_load(
    members: &[(String, std::net::SocketAddr)],
    threads: usize,
    acked: &AckLog,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|t| {
            let members = members.to_vec();
            let acked = Arc::clone(acked);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut client = ClusterClient::new(&members);
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let name = format!("t{t}-user{i}");
                    client
                        .enroll(&name, &clicks_for(&name))
                        .unwrap_or_else(|e| panic!("enroll {name} must survive faults: {e}"));
                    // Only names the cluster acknowledged enter the log —
                    // these are the ones that must never be lost.
                    acked.lock().unwrap().push(name);
                    i += 1;
                }
            })
        })
        .collect()
}

fn acked_count(acked: &AckLog) -> usize {
    acked.lock().unwrap().len()
}

fn wait_for_acks(acked: &AckLog, at_least: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while acked_count(acked) < at_least {
        assert!(
            Instant::now() < deadline,
            "load generator stalled below {at_least} acks"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Log in as every acked account through a fresh routing client over the
/// current membership; every one must be Accepted.
fn verify_every_acked_account(cluster: &Cluster, acked: &AckLog) {
    let mut client = ClusterClient::new(&cluster.members());
    let names = acked.lock().unwrap().clone();
    assert!(!names.is_empty(), "the scenario must have acked something");
    for name in &names {
        let (decision, _) = client
            .login(name, &clicks_for(name))
            .unwrap_or_else(|e| panic!("acked account {name} lost: {e}"));
        assert_eq!(
            decision,
            LoginDecision::Accepted,
            "acked account {name} must log in"
        );
    }
}

/// The acceptance scenario: kill a primary mid-burst under concurrent
/// multi-client load; the backup promotes (ring re-resolution on both the
/// clients and the surviving replicators) and zero acked data is lost.
#[test]
fn killing_a_primary_under_load_loses_no_acked_enrollment() {
    let (mut cluster, root) = cluster_of(3, "kill");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 3, &acked, &stop);

    // Let a healthy prefix land, then pull the trigger mid-burst.
    wait_for_acks(&acked, 30);
    let before_kill = acked_count(&acked);
    cluster.kill(0);
    cluster.log_event(&format!("harness: killed node-0 after {before_kill} acks"));

    // The survivors must keep acking enrollments after the kill.
    wait_for_acks(&acked, before_kill + 30);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive the kill");
    }

    assert_eq!(cluster.members().len(), 2, "one node down, two serving");
    verify_every_acked_account(&cluster, &acked);
    cluster.log_event(&format!(
        "harness: verified all {} acked accounts after the kill",
        acked_count(&acked)
    ));
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Outbound replication connections are dropped on every node mid-burst
/// (a network blip, not a death): the next record reconnects
/// transparently, no node is evicted, and nothing acked is lost.
#[test]
fn replication_connection_drops_are_survived_without_evictions() {
    let (cluster, root) = cluster_of(3, "drops");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    for round in 0..3 {
        wait_for_acks(&acked, (round + 1) * 15);
        cluster.log_event(&format!(
            "harness: dropping all replication conns ({round})"
        ));
        for i in 0..cluster.len() {
            if let Some(replicator) = cluster.replicator(i) {
                replicator.drop_connections();
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive connection drops");
    }

    // A blip is not a death: every node still considers every peer live.
    for i in 0..cluster.len() {
        let replicator = cluster.replicator(i).expect("all nodes alive");
        for j in 0..cluster.len() {
            assert!(
                replicator.is_live(cluster.node_id(j)),
                "node-{i} must not have evicted node-{j} over a reconnectable drop"
            );
        }
    }
    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Asymmetric partition: node-1's replication listener is severed while
/// its auth listener keeps serving.  Peers evict it and re-route replicas
/// to the next successor, so even a follow-up kill of node-0 loses
/// nothing: every acked account is durable on two *reachable* stores.
#[test]
fn severed_replication_reroutes_backups_so_a_later_kill_loses_nothing() {
    let (mut cluster, root) = cluster_of(3, "sever");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    wait_for_acks(&acked, 20);
    cluster.sever_replication(1);
    // Keep enrolling through the partition, then kill a primary.
    let at_sever = acked_count(&acked);
    wait_for_acks(&acked, at_sever + 20);
    cluster.kill(0);
    let at_kill = acked_count(&acked);
    wait_for_acks(&acked, at_kill + 20);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive sever + kill");
    }

    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The operator runbook, end to end: kill a node under load, let the
/// cluster absorb the failover, then restart the node from its own
/// durable directory.  It rejoins every survivor's ring and the whole
/// account population — including accounts enrolled while it was dead —
/// keeps logging in.
#[test]
fn a_restarted_node_rejoins_and_every_account_still_logs_in() {
    let (mut cluster, root) = cluster_of(3, "restart");
    let members = cluster.members();
    let acked: AckLog = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let load = spawn_load(&members, 2, &acked, &stop);

    wait_for_acks(&acked, 20);
    cluster.kill(2);
    let at_kill = acked_count(&acked);
    // Traffic enrolled while node-2 is dead lands entirely on the others.
    wait_for_acks(&acked, at_kill + 20);
    cluster.restart(2).expect("restart from own durable dir");
    let at_restart = acked_count(&acked);
    // And traffic after the restart may pick node-2 as primary again.
    wait_for_acks(&acked, at_restart + 20);
    stop.store(true, Ordering::Relaxed);
    for join in load {
        join.join().expect("enroller must survive kill + restart");
    }

    assert_eq!(cluster.members().len(), 3, "full strength after restart");
    for i in 0..cluster.len() {
        let replicator = cluster.replicator(i).expect("all nodes alive");
        assert!(
            replicator.is_live(cluster.node_id(2)) || i == 2,
            "node-{i} must have re-admitted node-2"
        );
    }
    verify_every_acked_account(&cluster, &acked);
    cluster.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
