//! End-to-end crash-safety for the serving layer: enroll over real TCP,
//! crash the store, recover, and log in as every acknowledged account.
//!
//! The crash is simulated two ways:
//!
//! * [`ServerHandle::abort`] — serving threads stop and the process-local
//!   store is dropped with *no* final snapshot, so recovery has only what
//!   the durability invariant guarantees was written before each ack;
//! * a byte-for-byte copy of the durability directory taken *while* an
//!   enrollment stream is running — the on-disk state a `kill -9` at that
//!   instant would leave, torn WAL tail included.  Recovery from the copy
//!   must hold every account acked before the copy began.

use gp_geometry::Point;
use gp_netauth::{
    AuthClient, AuthServer, DurabilityConfig, FsyncPolicy, LoginDecision, ServerConfig, ServingMode,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn clicks(seed: usize) -> Vec<Point> {
    (0..5)
        .map(|i| {
            let x = 40.0 + ((seed * 37 + i * 83) % 360) as f64;
            let y = 30.0 + ((seed * 53 + i * 61) % 260) as f64;
            Point::new(x, y)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gp-netauth-durability-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, serving: ServingMode) -> ServerConfig {
    ServerConfig {
        serving,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Always,
            ..DurabilityConfig::at(dir)
        }),
        ..ServerConfig::fast_for_tests()
    }
}

fn default_mode() -> ServingMode {
    ServingMode::platform_default()
}

/// The acceptance scenario: enroll over TCP with `fsync: Always`, crash
/// the store (no orderly save), reload from disk, and log in as every
/// acknowledged account.
#[test]
fn acked_enrollments_survive_a_crash_and_log_in_after_recovery() {
    let dir = temp_dir("abort");
    let users = 24usize;
    {
        let handle = AuthServer::open(durable_config(&dir, default_mode()))
            .expect("open durable server")
            .spawn()
            .expect("spawn");
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        for user in 0..users {
            // `enroll` returns only once the server acked with EnrollOk —
            // by the durability invariant, the WAL record is fsynced.
            client
                .enroll(&format!("user{user}"), &clicks(user))
                .unwrap();
        }
        client.quit().unwrap();
        // Crash: threads stop, no final snapshot, memory is gone.
        handle.abort();
    }
    // Recovery: a fresh process-equivalent opens the same directory.
    let handle = AuthServer::open(durable_config(&dir, default_mode()))
        .expect("recover durable server")
        .spawn()
        .expect("respawn");
    let stats = handle
        .server()
        .store()
        .durability_stats()
        .expect("store is durable");
    assert_eq!(
        stats.replayed_records, users as u64,
        "every acked enrollment was in the WAL"
    );
    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    for user in 0..users {
        let (decision, failures) = client.login(&format!("user{user}"), &clicks(user)).unwrap();
        assert_eq!(
            (decision, failures),
            (LoginDecision::Accepted, 0),
            "user{user} must log in after recovery"
        );
    }
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Copy the durability directory mid-enrollment-stream (the disk state a
/// `kill -9` would leave at an arbitrary instant, torn tail included) and
/// recover from the copy: every account acked before the copy began must
/// be present and verifiable.
#[test]
fn disk_state_captured_mid_stream_recovers_every_previously_acked_account() {
    let dir = temp_dir("mid-stream");
    let copy = temp_dir("mid-stream-copy");
    let handle = AuthServer::open(durable_config(&dir, default_mode()))
        .expect("open durable server")
        .spawn()
        .expect("spawn");
    let addr = handle.addr();
    let acked = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let enroller = {
        let (acked, stop) = (Arc::clone(&acked), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut client = AuthClient::connect(addr).expect("connect");
            let mut user = 0usize;
            while !stop.load(Ordering::Relaxed) {
                client
                    .enroll(&format!("user{user}"), &clicks(user))
                    .unwrap();
                user += 1;
                acked.store(user, Ordering::SeqCst);
            }
            let _ = client.quit();
        })
    };
    // Let a prefix land, then photograph the disk while the stream runs.
    while acked.load(Ordering::SeqCst) < 8 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let acked_before_copy = acked.load(Ordering::SeqCst);
    std::fs::create_dir_all(&copy).unwrap();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), copy.join(entry.file_name())).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    enroller.join().unwrap();
    handle.abort();

    // Recover from the mid-stream photograph.
    let recovered = AuthServer::open(durable_config(&copy, default_mode()))
        .expect("recover from mid-stream copy");
    let store = recovered.store();
    assert!(
        store.len() >= acked_before_copy,
        "all {acked_before_copy} accounts acked before the copy must survive, got {}",
        store.len()
    );
    let system = recovered.system().clone();
    for user in 0..acked_before_copy {
        assert!(
            store
                .verify(&system, &format!("user{user}"), &clicks(user))
                .unwrap(),
            "user{user} was acked before the copy and must verify"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&copy).unwrap();
}

/// The background snapshot thread compacts WALs past the threshold while
/// the server keeps answering, and recovery still sees every account
/// (snapshot + tail, not WAL alone).
#[test]
fn background_snapshots_compact_under_load_without_losing_accounts() {
    let dir = temp_dir("compact");
    let users = 32usize;
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Always,
            // Tiny threshold + fast cadence: compaction must trigger
            // repeatedly during the enrollment stream.
            snapshot_threshold_bytes: 256,
            snapshot_interval: Duration::from_millis(10),
            ..DurabilityConfig::at(&dir)
        }),
        ..ServerConfig::fast_for_tests()
    };
    {
        let handle = AuthServer::open(config.clone())
            .expect("open")
            .spawn()
            .expect("spawn");
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        for user in 0..users {
            client
                .enroll(&format!("user{user}"), &clicks(user))
                .unwrap();
            // Give the compaction thread room to interleave.
            if user % 8 == 0 {
                std::thread::sleep(Duration::from_millis(15));
            }
        }
        // Logins keep flowing while compaction happens.
        for user in 0..users {
            let (decision, _) = client.login(&format!("user{user}"), &clicks(user)).unwrap();
            assert_eq!(decision, LoginDecision::Accepted);
        }
        client.quit().unwrap();
        let stats = handle.server().store().durability_stats().unwrap();
        assert!(
            stats.snapshots > 0,
            "the background thread must have compacted at least once: {stats:?}"
        );
        handle.abort();
    }
    let recovered = AuthServer::open(config).expect("recover");
    let stats = recovered.store().durability_stats().unwrap();
    assert!(
        stats.replayed_records < users as u64,
        "compaction must have moved records out of the WAL: {stats:?}"
    );
    assert_eq!(recovered.store().len(), users);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Durability holds in worker-pool mode too (the non-Linux serving path):
/// the WAL append happens in `settle_responses` before the worker writes
/// the response frame, whichever thread runs it.
#[test]
fn worker_pool_mode_is_equally_crash_safe() {
    let dir = temp_dir("pool");
    let users = 8usize;
    {
        let handle = AuthServer::open(durable_config(&dir, ServingMode::WorkerPool))
            .expect("open")
            .spawn()
            .expect("spawn");
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        for user in 0..users {
            client
                .enroll(&format!("user{user}"), &clicks(user))
                .unwrap();
        }
        client.quit().unwrap();
        handle.abort();
    }
    let handle = AuthServer::open(durable_config(&dir, ServingMode::WorkerPool))
        .expect("recover")
        .spawn()
        .expect("respawn");
    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    for user in 0..users {
        let (decision, _) = client.login(&format!("user{user}"), &clicks(user)).unwrap();
        assert_eq!(decision, LoginDecision::Accepted, "user{user}");
    }
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A graceful shutdown compacts everything into snapshots; the next open
/// replays nothing and still serves every account.
#[test]
fn graceful_shutdown_compacts_so_recovery_replays_nothing() {
    let dir = temp_dir("graceful");
    {
        let handle = AuthServer::open(durable_config(&dir, default_mode()))
            .expect("open")
            .spawn()
            .expect("spawn");
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        for user in 0..6 {
            client
                .enroll(&format!("user{user}"), &clicks(user))
                .unwrap();
        }
        client.quit().unwrap();
        handle.shutdown(); // graceful: final snapshot_all
    }
    let recovered = AuthServer::open(durable_config(&dir, default_mode())).expect("reopen");
    let stats = recovered.store().durability_stats().unwrap();
    assert_eq!(stats.replayed_records, 0, "shutdown left empty WALs");
    assert_eq!(recovered.store().len(), 6);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Regression test for the `FsyncPolicy::Batch(n)` shutdown edge: with an
/// enrollment count that is *not* a multiple of `n`, the final sub-batch
/// sits in the page cache un-fsynced when the last ack leaves.  A graceful
/// shutdown must force that tail to stable storage (`sync_wals`) before
/// the final compaction, so a clean stop replays nothing and loses
/// nothing — whichever of the two flush steps the machine dies after.
#[test]
fn batched_fsync_tail_is_flushed_on_graceful_shutdown() {
    let dir = temp_dir("batch-tail");
    // 4-record fsync batches, 6 enrollments: records 5 and 6 are an
    // unsynced tail at shutdown time.
    let users = 6usize;
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Batch(4),
            ..DurabilityConfig::at(&dir)
        }),
        ..ServerConfig::fast_for_tests()
    };
    {
        let handle = AuthServer::open(config.clone())
            .expect("open")
            .spawn()
            .expect("spawn");
        let mut client = AuthClient::connect(handle.addr()).expect("connect");
        for user in 0..users {
            client
                .enroll(&format!("user{user}"), &clicks(user))
                .unwrap();
        }
        client.quit().unwrap();
        handle.shutdown(); // graceful: sync_wals + snapshot_all
    }
    let handle = AuthServer::open(config)
        .expect("reopen")
        .spawn()
        .expect("respawn");
    let stats = handle.server().store().durability_stats().unwrap();
    assert_eq!(
        stats.replayed_records, 0,
        "a cleanly stopped batch-mode server replays nothing"
    );
    assert_eq!(handle.server().store().len(), users);
    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    for user in 0..users {
        let (decision, _) = client.login(&format!("user{user}"), &clicks(user)).unwrap();
        assert_eq!(
            decision,
            LoginDecision::Accepted,
            "user{user} sat in the unsynced tail and must survive a clean stop"
        );
    }
    client.quit().unwrap();
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
