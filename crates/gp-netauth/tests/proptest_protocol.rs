//! Property-based tests for the wire protocol and framing layers.

use bytes::Bytes;
use gp_geometry::Point;
use gp_netauth::{
    ClientMessage, FrameReader, FrameWriter, LoginDecision, NetAuthError, ServerMessage,
};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_clicks() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0..2000.0f64, 0.0..2000.0f64), 0..12)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn arb_username() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9_.-]{1,32}"
}

fn arb_client_message() -> impl Strategy<Value = ClientMessage> {
    prop_oneof![
        (arb_username(), arb_clicks())
            .prop_map(|(username, clicks)| ClientMessage::Enroll { username, clicks }),
        (arb_username(), arb_clicks())
            .prop_map(|(username, clicks)| ClientMessage::Login { username, clicks }),
        Just(ClientMessage::GetConfig),
        Just(ClientMessage::Quit),
    ]
}

fn arb_server_message() -> impl Strategy<Value = ServerMessage> {
    let decision = prop_oneof![
        Just(LoginDecision::Accepted),
        Just(LoginDecision::Rejected),
        Just(LoginDecision::LockedOut),
    ];
    prop_oneof![
        Just(ServerMessage::EnrollOk),
        (decision, any::<u32>())
            .prop_map(|(decision, failures)| ServerMessage::LoginResult { decision, failures }),
        ("[a-z:0-9.-]{1,40}", any::<u32>())
            .prop_map(|(scheme, clicks)| ServerMessage::Config { scheme, clicks }),
        "[ -~]{0,80}".prop_map(|reason| ServerMessage::Error { reason }),
        Just(ServerMessage::Goodbye),
    ]
}

proptest! {
    /// Every client message survives encode → decode.
    #[test]
    fn client_messages_round_trip(message in arb_client_message()) {
        let decoded = ClientMessage::decode(message.encode()).unwrap();
        prop_assert_eq!(decoded, message);
    }

    /// Every server message survives encode → decode.
    #[test]
    fn server_messages_round_trip(message in arb_server_message()) {
        let decoded = ServerMessage::decode(message.encode()).unwrap();
        prop_assert_eq!(decoded, message);
    }

    /// Decoding never panics on arbitrary byte strings — it either returns a
    /// message or an error.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ClientMessage::decode(Bytes::from(bytes.clone()));
        let _ = ServerMessage::decode(Bytes::from(bytes));
    }

    /// A sequence of frames written through the framing layer is read back
    /// unchanged and in order.
    #[test]
    fn framing_round_trips_sequences(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..512), 0..8)) {
        let mut buf = Vec::new();
        {
            let mut writer = FrameWriter::new(&mut buf);
            for payload in &payloads {
                writer.write_frame(payload).unwrap();
            }
        }
        let mut reader = FrameReader::new(Cursor::new(buf));
        for payload in &payloads {
            let frame = reader.read_frame().unwrap();
            prop_assert_eq!(&frame[..], &payload[..]);
        }
        prop_assert!(matches!(reader.read_frame(), Err(NetAuthError::UnexpectedEof)));
    }

    /// Flipping any single bit of a framed message is detected: the reader
    /// reports an error (integrity, version, length or EOF) rather than
    /// silently returning a different payload.
    #[test]
    fn framing_detects_single_bit_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        bit in 0usize..64,
    ) {
        let mut buf = Vec::new();
        FrameWriter::new(&mut buf).write_frame(&payload).unwrap();
        let bit = bit % (buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
        let mut reader = FrameReader::new(Cursor::new(buf));
        // Any detection path (an error) is acceptable; an undetected
        // corruption must at least leave the payload intact.
        if let Ok(frame) = reader.read_frame() {
            prop_assert_eq!(&frame[..], &payload[..],
                "corruption went unnoticed and changed the payload");
        }
    }
}
