//! Exhaustive interleaving model tests for gp-netauth's coordination
//! kernels, driven by the gp-sched deterministic scheduler.
//!
//! Only compiled under `RUSTFLAGS="--cfg gp_sched"` — that flag switches
//! `gp_sched::sync` (which `PendingAccounts`, `AckState`, and
//! `BatchVerifier` are built against) from std primitives to the
//! instrumented shims, so every lock, wait, and notify below is a
//! scheduling choice point the explorer enumerates. See CONCURRENCY.md
//! for the protocol inventory and README.md for how to replay a failing
//! schedule trace.
#![cfg(gp_sched)]

use gp_crypto::{iterated_hash, SaltedHasher};
use gp_netauth::acks::AckState;
use gp_netauth::batch::{BatchVerifier, HashJob};
use gp_netauth::pending::PendingAccounts;
use gp_sched::{shim, thread, Explorer};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// PendingAccounts: a login parked on its own account's enrollment barrier
/// must always unpark — either the barrier was already down, or the
/// enroll-commit's `end` wakes it. Two racing enrollments of the same name
/// exercise the refcount; the explorer proves no schedule loses the wakeup
/// (an untimed hang would be reported as deadlock, and `wait_clear`'s
/// timeout only fires at quiescence, i.e. if the commits could never run).
#[test]
fn pending_accounts_login_always_unparks() {
    let exploration = Explorer::new().explore(|| {
        let pending = Arc::new(PendingAccounts::new());
        let committed = Arc::new(shim::AtomicBool::new(false));
        pending.begin("alice");

        let (p2, c2) = (Arc::clone(&pending), Arc::clone(&committed));
        let login = thread::spawn(move || {
            p2.wait_clear("alice", Duration::from_millis(5));
            // `committed` is set only after `end` completes, and this model
            // has exactly one enrollment: once the login observes the
            // commit, the barrier must be down.
            if c2.load(Ordering::SeqCst) {
                assert!(!p2.is_pending("alice"), "barrier still up after its commit");
            }
        });

        pending.end("alice");
        committed.store(true, Ordering::SeqCst);
        login.join();
        assert!(!pending.is_pending("alice"));
    });
    assert!(
        exploration.schedules > 5,
        "the race must branch the schedule"
    );
    assert_eq!(
        exploration.pruned, 0,
        "exploration must be exhaustive, not truncated"
    );
}

/// PendingAccounts refcounting: with two racing enrollments of one name,
/// the barrier stays up until *both* commit (each holds a reference), and
/// a parked login can never observe a half-released barrier as clear
/// while the second enrollment still holds it.
#[test]
fn pending_accounts_refcount_requires_all_commits() {
    let exploration = Explorer::new().explore(|| {
        let pending = Arc::new(PendingAccounts::new());
        pending.begin("alice");

        let p2 = Arc::clone(&pending);
        let second_enroll = thread::spawn(move || {
            p2.begin("alice");
            // This thread holds a reference: the barrier must be up no
            // matter what the first enrollment's commit is doing.
            assert!(
                p2.is_pending("alice"),
                "barrier dropped while a ref is held"
            );
            p2.end("alice");
        });

        let p3 = Arc::clone(&pending);
        let login = thread::spawn(move || {
            p3.wait_clear("alice", Duration::from_millis(5));
        });

        pending.end("alice");
        second_enroll.join();
        login.join();
        assert!(
            !pending.is_pending("alice"),
            "all enrollments ended, table must be clear"
        );
    });
    assert!(exploration.schedules > 10);
    assert_eq!(exploration.pruned, 0);
}

/// AckState: once the recorder has recorded `seq`, a waiter for `seq` must
/// observe it — the timeout transition only fires at quiescence, and at
/// quiescence the mark is final, so `wait_for` can never spuriously time
/// out while the ack it awaits has arrived.
#[test]
fn ack_waiter_observes_recorded_seq() {
    let exploration = Explorer::new().explore(|| {
        let acks = Arc::new(AckState::new());
        let a2 = Arc::clone(&acks);
        let recorder = thread::spawn(move || {
            a2.record(1);
            a2.record(2);
        });
        let waited = acks.wait_for(2, Duration::from_millis(5));
        assert!(
            waited.is_ok(),
            "recorder always runs, the ack must be observed: {waited:?}"
        );
        recorder.join();
    });
    assert!(exploration.schedules > 1);
    assert_eq!(exploration.pruned, 0);
}

/// AckState: a broken connection must error every waiter out — no
/// schedule may leave the waiter parked forever, and no waiter may return
/// `Ok` for an ack that never arrived.
#[test]
fn ack_waiter_errors_on_broken_connection() {
    let exploration = Explorer::new().explore(|| {
        let acks = Arc::new(AckState::new());
        let a2 = Arc::clone(&acks);
        let breaker = thread::spawn(move || {
            a2.mark_broken();
        });
        let waited = acks.wait_for(1, Duration::from_millis(5));
        assert!(
            waited.is_err(),
            "no ack was ever recorded, wait_for must not succeed"
        );
        breaker.join();
    });
    assert_eq!(exploration.pruned, 0);
}

/// AckState: with no recorder at all the waiter must take the timeout
/// path (never hang, never succeed).
#[test]
fn ack_waiter_times_out_at_quiescence() {
    Explorer::new().explore(|| {
        let acks = AckState::new();
        let waited = acks.wait_for(1, Duration::from_millis(1));
        let err = waited.expect_err("nothing records, the wait must time out");
        assert!(
            err.to_string().contains("timed out"),
            "unexpected error: {err}"
        );
    });
}

/// BatchVerifier leader election: two concurrent submissions, every
/// schedule must complete both with correct digests — whichever thread
/// wins leadership hashes the coalesced batch, the follower's short timed
/// wait re-checks, and nobody hangs on the `leader_active` handoff.
#[test]
fn batch_verifier_all_submissions_complete() {
    let exploration = Explorer::new().max_schedules(500_000).explore(|| {
        let verifier = Arc::new(BatchVerifier::new(2, Duration::ZERO));
        let v2 = Arc::clone(&verifier);
        let other = thread::spawn(move || {
            v2.submit(vec![HashJob {
                hasher: SaltedHasher::new(b"salt-b"),
                pre_image: b"attempt-b".to_vec(),
                iterations: 1,
            }])
        });
        let mine = verifier.submit(vec![HashJob {
            hasher: SaltedHasher::new(b"salt-a"),
            pre_image: b"attempt-a".to_vec(),
            iterations: 1,
        }]);
        let theirs = other.join();
        assert_eq!(mine, vec![iterated_hash(b"salt-a", b"attempt-a", 1)]);
        assert_eq!(theirs, vec![iterated_hash(b"salt-b", b"attempt-b", 1)]);
    });
    assert!(
        exploration.schedules > 10,
        "leader/follower handoff must branch the schedule"
    );
}
