//! Discretization configuration shared by all graphical password schemes.

use gp_discretization::{
    CenteredDiscretization, DiscretizationScheme, GridSelectionPolicy, RobustDiscretization,
    StaticGridDiscretization,
};
use serde::{Deserialize, Serialize};

/// Which discretization scheme a password system uses and with what
/// parameters.  This is the deployment-time choice the paper argues about:
/// Centered Discretization at a given pixel tolerance versus Robust
/// Discretization at either the same tolerance or the same grid size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiscretizationConfig {
    /// Centered Discretization guaranteeing a whole-pixel tolerance.
    Centered {
        /// Guaranteed tolerance in whole pixels (the scheme uses `r = t + 0.5`).
        tolerance_px: u32,
    },
    /// Robust Discretization with minimum tolerance `r` (pixels).
    Robust {
        /// Minimum guaranteed tolerance in pixels.
        r: f64,
        /// Grid-selection policy used at enrollment.
        policy: GridSelectionPolicy,
    },
    /// A single static grid of the given square size (baseline only).
    Static {
        /// Side length of the grid squares in pixels.
        square_size: f64,
    },
}

impl DiscretizationConfig {
    /// Centered Discretization with a whole-pixel tolerance.
    pub fn centered(tolerance_px: u32) -> Self {
        DiscretizationConfig::Centered { tolerance_px }
    }

    /// Robust Discretization with the paper's "optimal" (most-centered)
    /// grid-selection policy.
    pub fn robust(r: f64) -> Self {
        DiscretizationConfig::Robust {
            r,
            policy: GridSelectionPolicy::MostCentered,
        }
    }

    /// A static grid baseline.
    pub fn static_grid(square_size: f64) -> Self {
        DiscretizationConfig::Static { square_size }
    }

    /// Short name used in stored records ("centered", "robust", "static-grid").
    pub fn scheme_name(&self) -> &'static str {
        match self {
            DiscretizationConfig::Centered { .. } => "centered",
            DiscretizationConfig::Robust { .. } => "robust",
            DiscretizationConfig::Static { .. } => "static-grid",
        }
    }

    /// Build the concrete discretization scheme.
    pub fn build(&self) -> Box<dyn DiscretizationScheme + Send + Sync> {
        match *self {
            DiscretizationConfig::Centered { tolerance_px } => {
                Box::new(CenteredDiscretization::from_pixel_tolerance(tolerance_px))
            }
            DiscretizationConfig::Robust { r, policy } => Box::new(
                RobustDiscretization::with_policy(r, policy)
                    .expect("robust tolerance must be positive"),
            ),
            DiscretizationConfig::Static { square_size } => Box::new(
                StaticGridDiscretization::new(square_size)
                    .expect("static grid square size must be positive"),
            ),
        }
    }

    /// The guaranteed tolerance of the configured scheme, in pixels.
    pub fn guaranteed_tolerance(&self) -> f64 {
        self.build().guaranteed_tolerance()
    }

    /// The grid-square size of the configured scheme, in pixels.
    pub fn grid_square_size(&self) -> f64 {
        self.build().grid_square_size()
    }

    /// Serialize to a compact string for password-file headers,
    /// e.g. `centered:9`, `robust:6:most-centered`, `static:13`.
    pub fn to_header(&self) -> String {
        match self {
            DiscretizationConfig::Centered { tolerance_px } => format!("centered:{tolerance_px}"),
            DiscretizationConfig::Robust { r, policy } => {
                let p = match policy {
                    GridSelectionPolicy::FirstSafe => "first-safe",
                    GridSelectionPolicy::MostCentered => "most-centered",
                };
                format!("robust:{r}:{p}")
            }
            DiscretizationConfig::Static { square_size } => format!("static:{square_size}"),
        }
    }

    /// Parse a header produced by [`to_header`](Self::to_header).
    pub fn from_header(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        match parts.next()? {
            "centered" => {
                let t = parts.next()?.parse().ok()?;
                Some(DiscretizationConfig::Centered { tolerance_px: t })
            }
            "robust" => {
                let r: f64 = parts.next()?.parse().ok()?;
                let policy = match parts.next()? {
                    "first-safe" => GridSelectionPolicy::FirstSafe,
                    "most-centered" => GridSelectionPolicy::MostCentered,
                    _ => return None,
                };
                Some(DiscretizationConfig::Robust { r, policy })
            }
            "static" => {
                let s: f64 = parts.next()?.parse().ok()?;
                Some(DiscretizationConfig::Static { square_size: s })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_names() {
        assert_eq!(DiscretizationConfig::centered(9).scheme_name(), "centered");
        assert_eq!(DiscretizationConfig::robust(6.0).scheme_name(), "robust");
        assert_eq!(
            DiscretizationConfig::static_grid(13.0).scheme_name(),
            "static-grid"
        );
    }

    #[test]
    fn built_schemes_have_expected_parameters() {
        let c = DiscretizationConfig::centered(9);
        assert_eq!(c.guaranteed_tolerance(), 9.5);
        assert_eq!(c.grid_square_size(), 19.0);
        let r = DiscretizationConfig::robust(6.0);
        assert_eq!(r.guaranteed_tolerance(), 6.0);
        assert_eq!(r.grid_square_size(), 36.0);
        let s = DiscretizationConfig::static_grid(13.0);
        assert_eq!(s.grid_square_size(), 13.0);
    }

    #[test]
    fn header_round_trip() {
        for cfg in [
            DiscretizationConfig::centered(9),
            DiscretizationConfig::robust(6.0),
            DiscretizationConfig::Robust {
                r: 2.17,
                policy: GridSelectionPolicy::FirstSafe,
            },
            DiscretizationConfig::static_grid(13.0),
        ] {
            let header = cfg.to_header();
            assert_eq!(
                DiscretizationConfig::from_header(&header),
                Some(cfg),
                "{header}"
            );
        }
    }

    #[test]
    fn header_parse_rejects_garbage() {
        assert!(DiscretizationConfig::from_header("").is_none());
        assert!(DiscretizationConfig::from_header("centered").is_none());
        assert!(DiscretizationConfig::from_header("centered:x").is_none());
        assert!(DiscretizationConfig::from_header("robust:6:sideways").is_none());
        assert!(DiscretizationConfig::from_header("quantum:3").is_none());
    }
}
