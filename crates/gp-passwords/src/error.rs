//! Error type for graphical password operations.

use gp_discretization::DiscretizationError;

/// Errors produced while enrolling or verifying graphical passwords.
#[derive(Debug, Clone, PartialEq)]
pub enum PasswordError {
    /// The supplied click sequence has the wrong number of clicks.
    WrongClickCount {
        /// Number of clicks the policy requires.
        expected: usize,
        /// Number of clicks supplied.
        got: usize,
    },
    /// A click-point lies outside the image.
    ClickOutsideImage {
        /// Index of the offending click in the sequence.
        index: usize,
    },
    /// Two click-points are closer together than the policy allows.
    ClicksTooClose {
        /// Indices of the offending pair.
        first: usize,
        /// Indices of the offending pair.
        second: usize,
        /// Chebyshev distance between them.
        distance: f64,
    },
    /// A click-point required to fall inside the persuasive viewport did not.
    OutsideViewport {
        /// Index of the offending click in the sequence.
        index: usize,
    },
    /// The stored password record is malformed or belongs to a different
    /// scheme configuration.
    CorruptRecord {
        /// Human-readable description.
        reason: String,
    },
    /// The underlying discretization rejected an input.
    Discretization(DiscretizationError),
    /// The account already exists (enrollment) or does not exist (login).
    UnknownAccount {
        /// The account name.
        username: String,
    },
    /// Attempt to enroll an account name that is already taken.
    DuplicateAccount {
        /// The account name.
        username: String,
    },
    /// The durable storage layer failed (WAL append, snapshot
    /// publication, or recovery scan).  The in-memory store was left
    /// unchanged: a mutation is never acknowledged unless its log record
    /// was written.
    Storage {
        /// Human-readable description.
        reason: String,
    },
}

impl core::fmt::Display for PasswordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PasswordError::WrongClickCount { expected, got } => {
                write!(f, "expected {expected} click-points, got {got}")
            }
            PasswordError::ClickOutsideImage { index } => {
                write!(f, "click-point #{index} lies outside the image")
            }
            PasswordError::ClicksTooClose {
                first,
                second,
                distance,
            } => write!(
                f,
                "click-points #{first} and #{second} are only {distance:.1}px apart"
            ),
            PasswordError::OutsideViewport { index } => {
                write!(f, "click-point #{index} is outside the persuasive viewport")
            }
            PasswordError::CorruptRecord { reason } => {
                write!(f, "corrupt password record: {reason}")
            }
            PasswordError::Discretization(e) => write!(f, "discretization error: {e}"),
            PasswordError::UnknownAccount { username } => write!(f, "unknown account {username:?}"),
            PasswordError::DuplicateAccount { username } => {
                write!(f, "account {username:?} already exists")
            }
            PasswordError::Storage { reason } => write!(f, "storage error: {reason}"),
        }
    }
}

impl std::error::Error for PasswordError {}

impl From<DiscretizationError> for PasswordError {
    fn from(e: DiscretizationError) -> Self {
        PasswordError::Discretization(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PasswordError::WrongClickCount {
            expected: 5,
            got: 3
        }
        .to_string()
        .contains("expected 5"));
        assert!(PasswordError::ClickOutsideImage { index: 2 }
            .to_string()
            .contains("#2"));
        assert!(PasswordError::UnknownAccount {
            username: "bob".into()
        }
        .to_string()
        .contains("bob"));
    }

    #[test]
    fn from_discretization_error() {
        let e: PasswordError = DiscretizationError::NonFinitePoint.into();
        assert!(matches!(e, PasswordError::Discretization(_)));
    }
}
