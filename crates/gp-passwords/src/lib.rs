//! Click-based graphical password schemes built on top of the
//! discretization layer.
//!
//! This crate implements the *systems* the paper's evaluation runs on:
//!
//! * **PassPoints** ([`schemes::passpoints`]) — one image, an ordered
//!   sequence of five click-points (Wiedenbeck et al.), the system analyzed
//!   throughout the paper.
//! * **Cued Click-Points** ([`schemes::cued`]) — one click on each of five
//!   images, the next image determined by the previous click (Chiasson et
//!   al., ESORICS 2007).
//! * **Persuasive Cued Click-Points** ([`schemes::persuasive`]) — Cued
//!   Click-Points with a randomly positioned viewport during password
//!   creation that nudges users away from hotspots.
//!
//! The storage model follows §2.2/§3.2 of the paper: for every click-point
//! the *clear* grid identifier is stored next to a single salted, iterated
//! hash over the concatenation of all per-click identifiers and grid-square
//! indices ("all segment indices and their offsets are concatenated and
//! hashed together as one", which prevents per-click divide-and-conquer).
//!
//! The crate deliberately separates:
//!
//! * [`config::DiscretizationConfig`] — which discretization scheme to use
//!   and with what tolerance;
//! * [`policy::PasswordPolicy`] — how many clicks, on what image(s), and
//!   what constraints are placed on click selection;
//! * [`system::GraphicalPasswordSystem`] — enrollment and verification,
//!   including a split-phase API (prepare / finish) that lets a serving
//!   layer batch the expensive iterated hashing across attempts;
//! * [`store::PasswordStore`] — a concurrent multi-account store with a
//!   text serialization format;
//! * [`shard::ShardedPasswordStore`] — the same store partitioned into N
//!   independently locked shards keyed by account hash, with per-shard
//!   file persistence and a [`shard::ShardStats`] snapshot API, used by
//!   the networked server;
//! * [`wal`] — the crash-safe durability layer under the sharded store:
//!   per-shard append-only write-ahead logs (length-prefixed, checksummed,
//!   torn-tail-tolerant replay), configurable [`wal::FsyncPolicy`], and
//!   atomic snapshot publication ([`wal::atomic_write`]).  A store opened
//!   with [`shard::ShardedPasswordStore::open_durable`] logs every
//!   mutation before acknowledging it and recovers crash-only: newest
//!   intact snapshots + replayed WAL tails;
//! * [`ring::HashRing`] — consistent-hash placement of accounts onto a
//!   ring of node IDs (virtual points, per-key successor lists), the
//!   routing and backup-selection substrate for the replicated cluster
//!   in `gp-netauth`;
//! * [`lockdep`] — debug-build runtime lock-order checking: the sharded
//!   store's locks are [`lockdep::OrderedMutex`] / [`lockdep::OrderedRwLock`]
//!   wrappers tagged with a [`lockdep::LockClass`] rank, and any
//!   acquisition that violates the canonical `snap → accounts → wal`
//!   order panics on the spot (see also the static side, `gp-lint`).
//!
//! # Quickstart
//!
//! ```
//! use gp_passwords::prelude::*;
//! use gp_geometry::{ImageDims, Point};
//!
//! let system = GraphicalPasswordSystem::passpoints(
//!     ImageDims::STUDY,
//!     DiscretizationConfig::centered(9),
//! );
//!
//! let clicks = vec![
//!     Point::new(50.0, 60.0),
//!     Point::new(120.0, 200.0),
//!     Point::new(301.0, 75.0),
//!     Point::new(400.0, 310.0),
//!     Point::new(222.0, 111.0),
//! ];
//! let stored = system.enroll("alice", &clicks).unwrap();
//!
//! // Slightly-off re-entry is accepted…
//! let wobbly: Vec<_> = clicks.iter().map(|p| p.offset(4.0, -3.0)).collect();
//! assert!(system.verify(&stored, &wobbly).unwrap());
//!
//! // …but a click on the wrong spot is rejected.
//! let mut wrong = clicks.clone();
//! wrong[2] = Point::new(10.0, 10.0);
//! assert!(!system.verify(&stored, &wrong).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod lockdep;
pub mod policy;
pub mod ring;
pub mod schemes;
pub mod shard;
pub mod store;
pub mod stored;
pub mod system;
pub mod wal;
pub mod watermark;

pub use config::DiscretizationConfig;
pub use error::PasswordError;
pub use lockdep::{LockClass, OrderedMutex, OrderedRwLock};
pub use policy::PasswordPolicy;
pub use ring::HashRing;
pub use shard::{
    diff_range_entries, record_digest, shard_index, DurabilityOptions, DurabilityStats, RangeDiff,
    RangeDigest, ShardStats, ShardedPasswordStore,
};
pub use store::PasswordStore;
pub use stored::{ClickRecord, StoredPassword};
pub use system::{GraphicalPasswordSystem, VerifyScratch};
pub use wal::{FsyncPolicy, ShardWal, WalEntry, WalOp, WalReplay};

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::config::DiscretizationConfig;
    pub use crate::error::PasswordError;
    pub use crate::policy::PasswordPolicy;
    pub use crate::schemes::cued::CuedClickPoints;
    pub use crate::schemes::passpoints::PassPoints;
    pub use crate::schemes::persuasive::PersuasiveCuedClickPoints;
    pub use crate::store::PasswordStore;
    pub use crate::stored::StoredPassword;
    pub use crate::system::{GraphicalPasswordSystem, VerifyScratch};
}
