//! Runtime lock-order checking (lockdep) for the store's lock hierarchy.
//!
//! The canonical acquisition order of the sharded store is
//! `snap → accounts → wal` (see [`crate::shard`]). `gp-lint` checks that
//! order statically; this module checks it *dynamically*: the store's locks
//! are wrapped in [`OrderedMutex`] / [`OrderedRwLock`], each tagged with a
//! [`LockClass`] rank. In debug builds (which is what `cargo test` runs)
//! every acquisition is pushed onto a thread-local held-stack and recorded
//! into a global acquisition-order graph; acquiring a lock whose rank is not
//! strictly greater than every lock already held by the thread panics
//! immediately with both acquisition sites. Every existing concurrency test
//! therefore doubles as a deadlock detector — an inversion panics the first
//! time it *runs*, not the first time it deadlocks under contention.
//!
//! Release builds compile the tracking out entirely; the wrappers are
//! zero-cost shims over [`parking_lot`]'s primitives.

use parking_lot::{Mutex, RwLock};
use std::ops::{Deref, DerefMut};
use std::panic::Location;

/// A named rank in the lock hierarchy. Locks must be acquired in strictly
/// increasing rank order within a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockClass {
    /// Human-readable class name, used in panic messages and the graph.
    pub name: &'static str,
    /// Position in the canonical order; smaller ranks are acquired first.
    pub rank: u8,
}

impl LockClass {
    /// Per-shard snapshot serialization lock (`snap_locks`), acquired first.
    pub const SNAP: LockClass = LockClass {
        name: "snap",
        rank: 10,
    };
    /// Per-shard account map (`accounts`), acquired after `snap`.
    pub const ACCOUNTS: LockClass = LockClass {
        name: "accounts",
        rank: 20,
    };
    /// Per-shard WAL (`wals`), acquired last.
    pub const WAL: LockClass = LockClass {
        name: "wal",
        rank: 30,
    };
}

#[cfg(debug_assertions)]
mod tracking {
    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock};

    #[derive(Clone, Copy)]
    struct Held {
        class: LockClass,
        token: u64,
        location: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    type EdgeGraph = BTreeMap<(&'static str, &'static str), (String, String)>;

    fn graph() -> &'static StdMutex<EdgeGraph> {
        static GRAPH: OnceLock<StdMutex<EdgeGraph>> = OnceLock::new();
        GRAPH.get_or_init(|| StdMutex::new(BTreeMap::new()))
    }

    /// Check the rank discipline, record the acquisition, return a token the
    /// guard uses to pop itself on drop.
    pub(super) fn acquire(class: LockClass, location: &'static Location<'static>) -> u64 {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            for prior in held.iter() {
                if prior.class.rank >= class.rank {
                    panic!(
                        "lock-order inversion: acquiring `{}` (rank {}) at {} while \
                         holding `{}` (rank {}) acquired at {}; canonical order is \
                         snap -> accounts -> wal",
                        class.name,
                        class.rank,
                        location,
                        prior.class.name,
                        prior.class.rank,
                        prior.location,
                    );
                }
            }
            if !held.is_empty() {
                let mut g = match graph().lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                for prior in held.iter() {
                    g.entry((prior.class.name, class.name))
                        .or_insert_with(|| (prior.location.to_string(), location.to_string()));
                }
            }
            // gp-lint: allow(L6, token ids need uniqueness only; edges publish via the graph mutex)
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            held.push(Held {
                class,
                token,
                location,
            });
            token
        })
    }

    pub(super) fn release(token: u64) {
        HELD.with(|cell| cell.borrow_mut().retain(|h| h.token != token));
    }

    /// Snapshot of the global acquisition-order graph: `(held, acquired)`
    /// class-name pairs observed so far, with one example site each.
    pub fn observed_edges() -> Vec<super::ObservedEdge> {
        let g = match graph().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        g.iter().map(|(k, v)| (*k, v.clone())).collect()
    }
}

/// One observed acquisition edge: the `(held-class, acquired-class)` name
/// pair plus one example `(held-site, acquired-site)` location pair.
pub type ObservedEdge = ((&'static str, &'static str), (String, String));

/// Snapshot of the global acquisition-order graph (debug builds only):
/// `((held-class, acquired-class), (held-site, acquired-site))` pairs.
#[cfg(debug_assertions)]
pub fn observed_edges() -> Vec<ObservedEdge> {
    tracking::observed_edges()
}

/// Token representing one tracked acquisition; a no-op in release builds.
#[derive(Debug)]
struct Tracked {
    #[cfg(debug_assertions)]
    token: u64,
}

impl Tracked {
    #[inline]
    fn acquire(class: LockClass, location: &'static Location<'static>) -> Tracked {
        #[cfg(not(debug_assertions))]
        {
            let _ = (class, location);
            Tracked {}
        }
        #[cfg(debug_assertions)]
        Tracked {
            token: tracking::acquire(class, location),
        }
    }
}

impl Drop for Tracked {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        tracking::release(self.token);
    }
}

/// A [`parking_lot::Mutex`] participating in the lock hierarchy.
#[derive(Debug)]
pub struct OrderedMutex<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wrap `value` in a mutex belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: Mutex::new(value),
        }
    }

    /// Acquire the lock, enforcing the rank discipline in debug builds.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let location = Location::caller();
        let guard = self.inner.lock();
        OrderedMutexGuard {
            _tracked: Tracked::acquire(self.class, location),
            guard,
        }
    }

    /// Try to acquire without blocking; tracked like `lock` on success.
    #[track_caller]
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let location = Location::caller();
        let guard = self.inner.try_lock()?;
        Some(OrderedMutexGuard {
            _tracked: Tracked::acquire(self.class, location),
            guard,
        })
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Guard returned by [`OrderedMutex::lock`].
#[derive(Debug)]
pub struct OrderedMutexGuard<'a, T> {
    // Field order matters: the data guard must drop before the tracking pop
    // would matter, but either order is safe — tokens pop by identity.
    _tracked: Tracked,
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`parking_lot::RwLock`] participating in the lock hierarchy.
#[derive(Debug)]
pub struct OrderedRwLock<T> {
    class: LockClass,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wrap `value` in a reader–writer lock belonging to `class`.
    pub fn new(class: LockClass, value: T) -> Self {
        Self {
            class,
            inner: RwLock::new(value),
        }
    }

    /// Acquire a shared read guard, enforcing the rank discipline.
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let location = Location::caller();
        let guard = self.inner.read();
        OrderedReadGuard {
            _tracked: Tracked::acquire(self.class, location),
            guard,
        }
    }

    /// Acquire an exclusive write guard, enforcing the rank discipline.
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let location = Location::caller();
        let guard = self.inner.write();
        OrderedWriteGuard {
            _tracked: Tracked::acquire(self.class, location),
            guard,
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

/// Guard returned by [`OrderedRwLock::read`].
#[derive(Debug)]
pub struct OrderedReadGuard<'a, T> {
    _tracked: Tracked,
    guard: std::sync::RwLockReadGuard<'a, T>,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Guard returned by [`OrderedRwLock::write`].
#[derive(Debug)]
pub struct OrderedWriteGuard<'a, T> {
    _tracked: Tracked,
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_accepted() {
        let accounts = OrderedRwLock::new(LockClass::ACCOUNTS, 1u32);
        let wal = OrderedMutex::new(LockClass::WAL, 2u32);
        let a = accounts.write();
        let w = wal.lock();
        assert_eq!(*a + *w, 3);
    }

    #[test]
    fn guards_pop_out_of_order_safely() {
        let snap = OrderedMutex::new(LockClass::SNAP, ());
        let wal = OrderedMutex::new(LockClass::WAL, ());
        let s = snap.lock();
        let w = wal.lock();
        drop(s); // release lower rank first; token-based pop handles it
        drop(w);
        let _again = snap.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inversion_panics_in_debug_builds() {
        let accounts = OrderedRwLock::new(LockClass::ACCOUNTS, ());
        let wal = OrderedMutex::new(LockClass::WAL, ());
        let _w = wal.lock();
        let _a = accounts.read();
    }
}
