//! Password composition policy: how many clicks, on which image, and what
//! constraints apply to the click sequence.

use crate::error::PasswordError;
use gp_geometry::{ImageDims, Point};
use serde::{Deserialize, Serialize};

/// Constraints a click sequence must satisfy at enrollment (and, for the
/// click count and image bounds, at login too).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PasswordPolicy {
    /// Dimensions of the background image(s).
    pub image: ImageDims,
    /// Required number of click-points (PassPoints and the paper's study
    /// use 5).
    pub clicks: usize,
    /// Minimum Chebyshev distance between any two click-points of the same
    /// password, if enforced.  PassPoints deployments typically require
    /// click-points to be distinguishable from each other so the user does
    /// not confuse their order.
    pub min_click_separation: Option<f64>,
}

impl PasswordPolicy {
    /// The policy used by the paper's field study: 5 clicks on one
    /// 451×331-pixel image, no separation constraint.
    pub fn study_default() -> Self {
        Self {
            image: ImageDims::STUDY,
            clicks: 5,
            min_click_separation: None,
        }
    }

    /// Construct a policy.
    pub fn new(image: ImageDims, clicks: usize) -> Self {
        assert!(clicks > 0, "a password needs at least one click");
        Self {
            image,
            clicks,
            min_click_separation: None,
        }
    }

    /// Require a minimum Chebyshev separation between click-points.
    pub fn with_min_separation(mut self, separation: f64) -> Self {
        self.min_click_separation = Some(separation);
        self
    }

    /// Validate a click sequence for enrollment: count, image bounds and
    /// separation.
    pub fn validate_enrollment(&self, clicks: &[Point]) -> Result<(), PasswordError> {
        self.validate_count_and_bounds(clicks)?;
        if let Some(min_sep) = self.min_click_separation {
            for i in 0..clicks.len() {
                for j in (i + 1)..clicks.len() {
                    let d = clicks[i].chebyshev(&clicks[j]);
                    if d < min_sep {
                        return Err(PasswordError::ClicksTooClose {
                            first: i,
                            second: j,
                            distance: d,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validate a click sequence for login: count and image bounds only
    /// (a login attempt with clicks too close together is simply wrong, not
    /// invalid).
    pub fn validate_login(&self, clicks: &[Point]) -> Result<(), PasswordError> {
        self.validate_count_and_bounds(clicks)
    }

    fn validate_count_and_bounds(&self, clicks: &[Point]) -> Result<(), PasswordError> {
        if clicks.len() != self.clicks {
            return Err(PasswordError::WrongClickCount {
                expected: self.clicks,
                got: clicks.len(),
            });
        }
        for (index, p) in clicks.iter().enumerate() {
            if !p.is_finite() || !self.image.contains_point(p) {
                return Err(PasswordError::ClickOutsideImage { index });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn five_clicks() -> Vec<Point> {
        vec![
            Point::new(10.0, 10.0),
            Point::new(100.0, 50.0),
            Point::new(200.0, 200.0),
            Point::new(300.0, 100.0),
            Point::new(440.0, 320.0),
        ]
    }

    #[test]
    fn study_default_accepts_valid_sequence() {
        let policy = PasswordPolicy::study_default();
        assert!(policy.validate_enrollment(&five_clicks()).is_ok());
        assert!(policy.validate_login(&five_clicks()).is_ok());
    }

    #[test]
    fn wrong_count_rejected() {
        let policy = PasswordPolicy::study_default();
        let mut clicks = five_clicks();
        clicks.pop();
        assert_eq!(
            policy.validate_enrollment(&clicks),
            Err(PasswordError::WrongClickCount {
                expected: 5,
                got: 4
            })
        );
    }

    #[test]
    fn out_of_image_rejected_with_index() {
        let policy = PasswordPolicy::study_default();
        let mut clicks = five_clicks();
        clicks[3] = Point::new(500.0, 10.0); // beyond 451 wide
        assert_eq!(
            policy.validate_enrollment(&clicks),
            Err(PasswordError::ClickOutsideImage { index: 3 })
        );
        // NaN coordinates are also "outside".
        clicks[3] = Point::new(f64::NAN, 10.0);
        assert_eq!(
            policy.validate_login(&clicks),
            Err(PasswordError::ClickOutsideImage { index: 3 })
        );
    }

    #[test]
    fn separation_enforced_only_at_enrollment() {
        let policy = PasswordPolicy::study_default().with_min_separation(20.0);
        let mut clicks = five_clicks();
        clicks[1] = Point::new(15.0, 15.0); // within 20 of clicks[0]
        assert!(matches!(
            policy.validate_enrollment(&clicks),
            Err(PasswordError::ClicksTooClose {
                first: 0,
                second: 1,
                ..
            })
        ));
        assert!(policy.validate_login(&clicks).is_ok());
    }

    #[test]
    fn single_click_policy() {
        let policy = PasswordPolicy::new(ImageDims::new(200, 200), 1);
        assert!(policy.validate_enrollment(&[Point::new(5.0, 5.0)]).is_ok());
        assert!(policy.validate_enrollment(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one click")]
    fn zero_click_policy_rejected() {
        PasswordPolicy::new(ImageDims::new(10, 10), 0);
    }
}
