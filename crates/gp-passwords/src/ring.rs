//! Consistent-hash ring placement for a replicated cluster of stores.
//!
//! Accounts are placed on a ring of node IDs: each node projects a fixed
//! number of *virtual points* onto the 64-bit hash circle, and an account
//! (hashed with the same [`fnv1a64`] the shard router and the WAL use) is
//! owned by the first node point at or clockwise-after its hash.  Virtual
//! points smooth the load distribution and — more importantly for
//! failover — make each key's *successor list* vary per key, so when a
//! node dies its keys scatter across the survivors instead of dog-piling
//! onto one neighbour.
//!
//! The correctness obligations follow Zave's analysis of Chord-style
//! identifier spaces: at all times every key must be owned by **exactly
//! one** live node (coverage + uniqueness), and membership changes must
//! move **only** the key ranges adjacent to the joining/leaving node's
//! points.  Both are checked by unit tests here and by the proptest suite
//! in `tests/proptest_ring.rs`.  The property the failover design leans
//! on is a corollary: for any key, removing its owner promotes exactly
//! the key's *second* successor — which is where the replication layer
//! placed the backup copy.

use crate::wal::fnv1a64;
use std::collections::{BTreeMap, BTreeSet};

/// Finalizer (splitmix64's) applied over [`fnv1a64`] for ring positions.
///
/// FNV-1a diffuses its *low* bits well but leaves the high bits — which
/// decide ordering around the circle — highly correlated for short,
/// similar inputs; raw FNV points let a single one-letter node capture
/// half the circle.  The multiply-xorshift finalizer spreads the entropy
/// across all 64 bits, restoring the near-uniform arc lengths the
/// vnode-count math assumes.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Default number of virtual points each node projects onto the ring.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring mapping string keys to string node IDs.
///
/// Deterministic: the placement is a pure function of the member set (and
/// the vnode count), so every participant that knows the membership
/// computes identical owners with no coordination — clients route, nodes
/// pick backups, and the fault harness predicts promotions, all from
/// independent `HashRing` values.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    /// Hash point → owning node, ordered around the circle.
    points: BTreeMap<u64, String>,
    nodes: BTreeSet<String>,
}

impl HashRing {
    /// An empty ring where each joining node projects `vnodes` points
    /// (clamped to ≥ 1).
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            points: BTreeMap::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// A ring with [`DEFAULT_VNODES`] points per node, populated from
    /// `nodes`.
    pub fn with_nodes<I, S>(nodes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ring = Self::new(DEFAULT_VNODES);
        for node in nodes {
            ring.join(node.as_ref());
        }
        ring
    }

    /// The hash point of `node`'s `index`-th virtual point.
    fn point(node: &str, index: usize) -> u64 {
        let mut bytes = Vec::with_capacity(node.len() + 9);
        bytes.extend_from_slice(node.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(index as u64).to_be_bytes());
        mix64(fnv1a64(&bytes))
    }

    /// Where `key` lands on the circle.
    fn key_point(key: &str) -> u64 {
        mix64(fnv1a64(key.as_bytes()))
    }

    /// Add `node` to the ring; returns whether it was new.  Joining an
    /// existing member is a no-op.
    pub fn join(&mut self, node: &str) -> bool {
        if !self.nodes.insert(node.to_string()) {
            return false;
        }
        for index in 0..self.vnodes {
            // A 64-bit point collision between two nodes is ~impossible;
            // if it happens, first-comer keeps the point (deterministic,
            // and `leave` removes only points it owns).
            self.points
                .entry(Self::point(node, index))
                .or_insert_with(|| node.to_string());
        }
        true
    }

    /// Remove `node` from the ring; returns whether it was a member.
    /// Only `node`'s own points disappear — every other node's points
    /// (and therefore every key range not adjacent to `node`) are
    /// untouched.
    pub fn leave(&mut self, node: &str) -> bool {
        if !self.nodes.remove(node) {
            return false;
        }
        self.points.retain(|_, owner| owner != node);
        true
    }

    /// Whether `node` is a member.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.contains(node)
    }

    /// Number of member nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Member node IDs, sorted.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(String::as_str)
    }

    /// The node owning `key`: the first node point at or clockwise-after
    /// the key's hash.  `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.successors(key, 1).into_iter().next()
    }

    /// The first `n` *distinct* nodes clockwise from `key`'s hash.
    /// Element 0 is the owner, element 1 the natural backup, and so on;
    /// fewer than `n` are returned if the ring has fewer members.
    pub fn successors(&self, key: &str, n: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(n.min(self.nodes.len()));
        if n == 0 || self.points.is_empty() {
            return out;
        }
        let hash = Self::key_point(key);
        // Walk clockwise from the key's hash, wrapping once.
        for (_, node) in self.points.range(hash..).chain(self.points.range(..hash)) {
            if !out.iter().any(|seen| seen == node) {
                out.push(node.as_str());
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The node holding `key`'s replica: its second distinct successor.
    /// `None` when the ring has fewer than two members (nothing to
    /// replicate to).
    pub fn backup(&self, key: &str) -> Option<&str> {
        self.successors(key, 2).into_iter().nth(1)
    }

    /// `key`'s replica pair: `(owner, backup)`.  The backup is `None` on
    /// a single-node ring, the whole pair is `None` on an empty one.
    /// This is the unit the anti-entropy digest exchange ranges over: a
    /// *range* is the set of keys sharing one `(owner, backup)` pair.
    pub fn replica_pair(&self, key: &str) -> Option<(&str, Option<&str>)> {
        let mut succ = self.successors(key, 2).into_iter();
        let owner = succ.next()?;
        Some((owner, succ.next()))
    }

    /// Whether `node` holds a copy of `key` under this membership — i.e.
    /// it is the key's owner or its backup.  This is the predicate a
    /// (re)joining node's catch-up transfer filters by: every peer
    /// streams exactly the records the joiner now backs.
    pub fn holds(&self, key: &str, node: &str) -> bool {
        self.successors(key, 2).contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<String> {
        (0..256).map(|i| format!("user{i}")).collect()
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        let ring = HashRing::with_nodes(["node-0", "node-1", "node-2"]);
        for key in keys() {
            let owner = ring.owner(&key).expect("non-empty ring owns every key");
            assert!(ring.contains(owner));
            // Determinism: an independently constructed ring agrees.
            let again = HashRing::with_nodes(["node-2", "node-0", "node-1"]);
            assert_eq!(again.owner(&key), Some(owner), "{key}");
        }
    }

    #[test]
    fn empty_ring_owns_nothing_and_single_node_owns_everything() {
        let mut ring = HashRing::new(8);
        assert!(ring.owner("alice").is_none());
        assert!(ring.successors("alice", 3).is_empty());
        ring.join("only");
        for key in keys() {
            assert_eq!(ring.owner(&key), Some("only"));
            assert_eq!(ring.successors(&key, 3), vec!["only"]);
            assert!(ring.backup(&key).is_none(), "no second member");
        }
    }

    #[test]
    fn successors_are_distinct_and_start_with_the_owner() {
        let ring = HashRing::with_nodes(["a", "b", "c", "d"]);
        for key in keys() {
            let succ = ring.successors(&key, 4);
            assert_eq!(succ.len(), 4);
            assert_eq!(succ[0], ring.owner(&key).unwrap());
            let mut sorted = succ.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "distinct nodes for {key}");
        }
    }

    #[test]
    fn leave_promotes_each_keys_old_backup() {
        let mut ring = HashRing::with_nodes(["a", "b", "c", "d"]);
        let expectations: Vec<(String, String, String)> = keys()
            .into_iter()
            .map(|key| {
                let succ = ring.successors(&key, 2);
                (key, succ[0].to_string(), succ[1].to_string())
            })
            .collect();
        ring.leave("b");
        for (key, old_owner, old_backup) in expectations {
            if old_owner == "b" {
                assert_eq!(
                    ring.owner(&key),
                    Some(old_backup.as_str()),
                    "{key}: the replica holder must promote"
                );
            } else {
                assert_eq!(
                    ring.owner(&key),
                    Some(old_owner.as_str()),
                    "{key}: untouched"
                );
            }
        }
    }

    #[test]
    fn join_steals_keys_only_for_itself() {
        let mut ring = HashRing::with_nodes(["a", "b", "c"]);
        let before: Vec<(String, String)> = keys()
            .into_iter()
            .map(|key| {
                let owner = ring.owner(&key).unwrap().to_string();
                (key, owner)
            })
            .collect();
        assert!(ring.join("d"));
        assert!(!ring.join("d"), "re-join is a no-op");
        for (key, old_owner) in before {
            let new_owner = ring.owner(&key).unwrap();
            assert!(
                new_owner == old_owner || new_owner == "d",
                "{key}: moved to {new_owner}, not the joiner"
            );
        }
    }

    #[test]
    fn replica_pair_and_holds_agree_with_successors() {
        let ring = HashRing::with_nodes(["a", "b", "c", "d"]);
        for key in keys() {
            let succ = ring.successors(&key, 2);
            let (owner, backup) = ring.replica_pair(&key).unwrap();
            assert_eq!(owner, succ[0]);
            assert_eq!(backup, Some(succ[1]));
            for node in ["a", "b", "c", "d"] {
                assert_eq!(
                    ring.holds(&key, node),
                    succ.contains(&node),
                    "{key} on {node}"
                );
            }
        }
        assert!(HashRing::new(8).replica_pair("alice").is_none());
        let mut solo = HashRing::new(8);
        solo.join("only");
        assert_eq!(solo.replica_pair("alice"), Some(("only", None)));
        assert!(solo.holds("alice", "only"));
        assert!(!solo.holds("alice", "other"));
    }

    #[test]
    fn vnodes_spread_load_roughly_evenly() {
        let ring = HashRing::with_nodes(["a", "b", "c", "d"]);
        let mut counts = std::collections::BTreeMap::new();
        for i in 0..4096 {
            let key = format!("account-{i}");
            *counts
                .entry(ring.owner(&key).unwrap().to_string())
                .or_insert(0usize) += 1;
        }
        for (node, count) in &counts {
            // 4 nodes × 64 vnodes: each should land within a loose band
            // around the 1024 mean.
            assert!(
                (400..=1800).contains(count),
                "{node} owns {count} of 4096 — distribution collapsed"
            );
        }
    }
}
