//! Cued Click-Points (CCP): one click on each of several images, where each
//! click determines which image is shown next.
//!
//! CCP is one of the follow-on schemes the paper cites (§2) as having been
//! "designed to significantly increase the effort required by attackers to
//! conduct hotspot analysis".  Discretization is orthogonal to the scheme:
//! each of the five clicks is discretized exactly as in PassPoints, so CCP
//! benefits from Centered Discretization in the same way.
//!
//! The *cue* works as follows: the image shown for click `i + 1` is a
//! deterministic function of the image and grid square of click `i`.  A
//! wrong click therefore sends the user down a different image path —
//! implicit feedback to legitimate users, but no explicit rejection until
//! the final hash comparison.

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::stored::{ClickRecord, StoredPassword};
use gp_crypto::{PasswordHash, PasswordHasher, Sha256};
use gp_discretization::DiscretizedClick;
use gp_geometry::{ImageDims, Point};

/// Number of click-points (and images shown) in a standard CCP password.
pub const CCP_CLICKS: usize = 5;

/// A stored Cued Click-Points password.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCuedPassword {
    /// Account name (also the hash salt).
    pub username: String,
    /// Discretization configuration used at enrollment.
    pub config: DiscretizationConfig,
    /// Index of the first image shown (derived from the username).
    pub first_image: u32,
    /// Clear grid identifiers, one per click.
    pub clicks: Vec<ClickRecord>,
    /// Salted, iterated hash over the full (image, grid id, cell) sequence.
    pub hash: PasswordHash,
}

/// A Cued Click-Points deployment.
#[derive(Debug, Clone)]
pub struct CuedClickPoints {
    /// All portfolio images share the same dimensions.
    image: ImageDims,
    /// Number of images in the portfolio to draw from.
    portfolio_size: u32,
    config: DiscretizationConfig,
    hasher: PasswordHasher,
}

impl CuedClickPoints {
    /// Domain-separation label for CCP hashes.
    pub const HASH_DOMAIN: &'static str = "gp-passwords/ccp/v1";

    /// Create a CCP system with a portfolio of `portfolio_size` images of
    /// identical dimensions.
    pub fn new(
        image: ImageDims,
        portfolio_size: u32,
        config: DiscretizationConfig,
        iterations: u32,
    ) -> Self {
        assert!(
            portfolio_size > 0,
            "portfolio must contain at least one image"
        );
        Self {
            image,
            portfolio_size,
            config,
            hasher: PasswordHasher::new(Self::HASH_DOMAIN, iterations),
        }
    }

    /// The image dimensions shared by the portfolio.
    pub fn image(&self) -> ImageDims {
        self.image
    }

    /// Number of images in the portfolio.
    pub fn portfolio_size(&self) -> u32 {
        self.portfolio_size
    }

    /// The first image shown to a user, derived deterministically from the
    /// account name.
    pub fn first_image(&self, username: &str) -> u32 {
        let digest = Sha256::digest(username.as_bytes());
        u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]) % self.portfolio_size
    }

    /// The image shown after clicking a given grid square on `current`.
    ///
    /// The next image depends only on *discretized* data, so any click
    /// within tolerance leads to the same next image — essential for the
    /// cue to be usable.
    pub fn next_image(&self, current: u32, click: &DiscretizedClick) -> u32 {
        let mut h = Sha256::new();
        h.update(b"ccp-next-image");
        h.update(&current.to_be_bytes());
        h.update(&click.to_bytes());
        let digest = h.finalize();
        u32::from_be_bytes([digest[0], digest[1], digest[2], digest[3]]) % self.portfolio_size
    }

    fn validate(&self, clicks: &[Point]) -> Result<(), PasswordError> {
        if clicks.len() != CCP_CLICKS {
            return Err(PasswordError::WrongClickCount {
                expected: CCP_CLICKS,
                got: clicks.len(),
            });
        }
        for (index, p) in clicks.iter().enumerate() {
            if !p.is_finite() || !self.image.contains_point(p) {
                return Err(PasswordError::ClickOutsideImage { index });
            }
        }
        Ok(())
    }

    /// Pre-image of the password hash: the image index, grid identifier and
    /// cell of every click, concatenated in order.
    fn pre_image(images: &[u32], discretized: &[DiscretizedClick]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(discretized.len() as u32).to_be_bytes());
        for (img, click) in images.iter().zip(discretized.iter()) {
            out.extend_from_slice(&img.to_be_bytes());
            let bytes = click.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// The sequence of images a user (or attacker) would be shown while
    /// entering the given clicks, starting from the account's first image.
    /// Element `i` is the image on which click `i` is made.
    pub fn image_sequence(&self, username: &str, clicks: &[Point]) -> Vec<u32> {
        let scheme = self.config.build();
        let mut images = Vec::with_capacity(clicks.len());
        let mut current = self.first_image(username);
        for p in clicks {
            images.push(current);
            let d = scheme.enroll(p);
            current = self.next_image(current, &d);
        }
        images
    }

    /// Enroll a new CCP password.
    pub fn create(
        &self,
        username: &str,
        clicks: &[Point],
    ) -> Result<StoredCuedPassword, PasswordError> {
        self.validate(clicks)?;
        let scheme = self.config.build();
        let first_image = self.first_image(username);
        let mut current = first_image;
        let mut images = Vec::with_capacity(clicks.len());
        let mut discretized = Vec::with_capacity(clicks.len());
        for p in clicks {
            images.push(current);
            let d = scheme.enroll(p);
            current = self.next_image(current, &d);
            discretized.push(d);
        }
        let hash = self
            .hasher
            .hash(username.as_bytes(), &Self::pre_image(&images, &discretized));
        Ok(StoredCuedPassword {
            username: username.to_string(),
            config: self.config,
            first_image,
            clicks: discretized
                .iter()
                .map(|d| ClickRecord { grid_id: d.grid_id })
                .collect(),
            hash,
        })
    }

    /// Attempt a login.  The candidate clicks are discretized with the
    /// *stored* grid identifiers (as always, only clear data is available),
    /// the image path is replayed, and the final hash compared.
    pub fn login(
        &self,
        stored: &StoredCuedPassword,
        clicks: &[Point],
    ) -> Result<bool, PasswordError> {
        self.validate(clicks)?;
        if clicks.len() != stored.clicks.len() {
            return Err(PasswordError::WrongClickCount {
                expected: stored.clicks.len(),
                got: clicks.len(),
            });
        }
        let scheme = stored.config.build();
        let mut current = stored.first_image;
        let mut images = Vec::with_capacity(clicks.len());
        let mut discretized = Vec::with_capacity(clicks.len());
        for (record, login) in stored.clicks.iter().zip(clicks.iter()) {
            images.push(current);
            let cell = scheme.try_locate(&record.grid_id, login)?;
            let d = DiscretizedClick {
                grid_id: record.grid_id,
                cell,
            };
            current = self.next_image(current, &d);
            discretized.push(d);
        }
        let pre_image = Self::pre_image(&images, &discretized);
        Ok(stored
            .hash
            .verify_with(&self.hasher, stored.username.as_bytes(), &pre_image))
    }
}

/// Re-export of the PassPoints stored type used by analysis code that treats
/// both schemes uniformly (CCP records can be converted when every image has
/// the same dimensions).
impl StoredCuedPassword {
    /// View this CCP record as a PassPoints-style [`StoredPassword`] for
    /// code that only needs the clear grid identifiers and the hash
    /// (e.g. information-revealed analysis).  The policy is synthesized
    /// from the CCP parameters.
    pub fn as_stored_password(&self, image: ImageDims) -> StoredPassword {
        StoredPassword {
            username: self.username.clone(),
            config: self.config,
            policy: crate::policy::PasswordPolicy::new(image, self.clicks.len()),
            clicks: self.clicks.clone(),
            hash: self.hash.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ccp() -> CuedClickPoints {
        CuedClickPoints::new(ImageDims::STUDY, 50, DiscretizationConfig::centered(9), 4)
    }

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(60.0, 44.0),
            Point::new(140.0, 215.0),
            Point::new(310.0, 70.0),
            Point::new(405.0, 305.0),
            Point::new(230.0, 140.0),
        ]
    }

    #[test]
    fn create_and_login() {
        let system = ccp();
        let stored = system.create("alice", &clicks()).unwrap();
        assert!(system.login(&stored, &clicks()).unwrap());
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(8.0, -8.0)).collect();
        assert!(system.login(&stored, &wobbly).unwrap());
        let mut wrong = clicks();
        wrong[1] = Point::new(20.0, 20.0);
        assert!(!system.login(&stored, &wrong).unwrap());
    }

    #[test]
    fn image_path_is_stable_within_tolerance() {
        // The cue must not change when the user clicks a few pixels off.
        let system = ccp();
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(5.0, 5.0)).collect();
        // Within-tolerance clicks are in the same grid squares only when
        // discretized against the *enrolled* offsets, so compare via login
        // success (above) and via path equality on the exact same clicks.
        assert_eq!(
            system.image_sequence("alice", &clicks()),
            system.image_sequence("alice", &clicks())
        );
        // Different users start on (generally) different images.
        let a = system.image_sequence("alice", &clicks())[0];
        let b = system.image_sequence("bob-the-builder", &clicks())[0];
        let c = system.image_sequence("carol", &clicks())[0];
        assert!(
            a != b || a != c,
            "at least one of three users should start elsewhere"
        );
        let _ = wobbly;
    }

    #[test]
    fn wrong_click_diverts_image_path() {
        let system = ccp();
        let right = system.image_sequence("alice", &clicks());
        let mut wrong_clicks = clicks();
        wrong_clicks[0] = Point::new(400.0, 20.0);
        let wrong = system.image_sequence("alice", &wrong_clicks);
        assert_eq!(
            right[0], wrong[0],
            "first image depends only on the username"
        );
        assert_ne!(
            right[1..],
            wrong[1..],
            "a wrong first click must change the later images"
        );
    }

    #[test]
    fn five_clicks_enforced_and_bounds_checked() {
        let system = ccp();
        assert!(matches!(
            system.create("alice", &clicks()[..2]),
            Err(PasswordError::WrongClickCount { .. })
        ));
        let mut outside = clicks();
        outside[4] = Point::new(9999.0, 1.0);
        assert!(matches!(
            system.create("alice", &outside),
            Err(PasswordError::ClickOutsideImage { index: 4 })
        ));
    }

    #[test]
    fn works_with_robust_discretization_too() {
        let system =
            CuedClickPoints::new(ImageDims::STUDY, 20, DiscretizationConfig::robust(6.0), 3);
        let stored = system.create("dave", &clicks()).unwrap();
        assert!(system.login(&stored, &clicks()).unwrap());
        // 40 pixels off exceeds even Robust's maximum accepted distance
        // (5r = 30) while staying inside the 451x331 image.
        let off: Vec<Point> = clicks().iter().map(|p| p.offset(-40.0, -40.0)).collect();
        assert!(!system.login(&stored, &off).unwrap());
    }

    #[test]
    fn as_stored_password_preserves_clear_data() {
        let system = ccp();
        let stored = system.create("alice", &clicks()).unwrap();
        let view = stored.as_stored_password(ImageDims::STUDY);
        assert_eq!(view.clicks, stored.clicks);
        assert_eq!(view.hash, stored.hash);
        assert_eq!(view.policy.clicks, CCP_CLICKS);
    }

    #[test]
    #[should_panic(expected = "at least one image")]
    fn empty_portfolio_rejected() {
        CuedClickPoints::new(ImageDims::STUDY, 0, DiscretizationConfig::centered(9), 1);
    }
}
