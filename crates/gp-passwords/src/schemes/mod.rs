//! Concrete click-based graphical password schemes from the literature.
//!
//! * [`passpoints`] — PassPoints (Wiedenbeck et al. 2005): five ordered
//!   clicks on one image.  The scheme the paper's evaluation data comes
//!   from.
//! * [`cued`] — Cued Click-Points (Chiasson et al., ESORICS 2007): one
//!   click on each of five images, where each click determines the next
//!   image shown.  Mentioned in §2 as a design that raises the cost of
//!   hotspot analysis.
//! * [`persuasive`] — Persuasive Cued Click-Points (Chiasson et al. 2007):
//!   Cued Click-Points plus a randomly placed viewport during password
//!   creation that steers users away from hotspots.

pub mod cued;
pub mod passpoints;
pub mod persuasive;
