//! PassPoints: five ordered click-points on a single image.

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::policy::PasswordPolicy;
use crate::stored::StoredPassword;
use crate::system::GraphicalPasswordSystem;
use gp_crypto::PasswordHasher;
use gp_geometry::{ImageDims, Point};

/// Number of click-points in a standard PassPoints password.
pub const PASSPOINTS_CLICKS: usize = 5;

/// A PassPoints deployment: one background image, five ordered clicks.
#[derive(Debug, Clone)]
pub struct PassPoints {
    system: GraphicalPasswordSystem,
}

impl PassPoints {
    /// Create a PassPoints system on the given image with the given
    /// discretization and the default iteration count (1000).
    pub fn new(image: ImageDims, config: DiscretizationConfig) -> Self {
        Self::with_iterations(image, config, PasswordHasher::DEFAULT_ITERATIONS)
    }

    /// Create a PassPoints system with an explicit hash iteration count
    /// (useful to keep tests and large-scale simulations fast).
    pub fn with_iterations(
        image: ImageDims,
        config: DiscretizationConfig,
        iterations: u32,
    ) -> Self {
        Self {
            system: GraphicalPasswordSystem::new(
                PasswordPolicy::new(image, PASSPOINTS_CLICKS),
                config,
                iterations,
            ),
        }
    }

    /// The underlying generic system.
    pub fn system(&self) -> &GraphicalPasswordSystem {
        &self.system
    }

    /// The image dimensions.
    pub fn image(&self) -> ImageDims {
        self.system.policy().image
    }

    /// Create (enroll) a password.
    pub fn create(
        &self,
        username: &str,
        clicks: &[Point],
    ) -> Result<StoredPassword, PasswordError> {
        self.system.enroll(username, clicks)
    }

    /// Attempt a login.
    pub fn login(&self, stored: &StoredPassword, clicks: &[Point]) -> Result<bool, PasswordError> {
        self.system.verify(stored, clicks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(33.0, 40.0),
            Point::new(130.0, 210.0),
            Point::new(302.0, 64.0),
            Point::new(411.0, 300.0),
            Point::new(217.0, 150.0),
        ]
    }

    #[test]
    fn create_and_login_centered() {
        let pp =
            PassPoints::with_iterations(ImageDims::STUDY, DiscretizationConfig::centered(9), 4);
        let stored = pp.create("alice", &clicks()).unwrap();
        assert!(pp.login(&stored, &clicks()).unwrap());
        // 9 pixels off on every click and axis is still fine.
        let wobbly: Vec<Point> = clicks()
            .iter()
            .map(|p| pp.image().clamp_point(&p.offset(9.0, 9.0)))
            .collect();
        assert!(pp.login(&stored, &wobbly).unwrap());
        // 10 pixels off on one axis of one click is not.
        let mut off = clicks();
        off[2] = off[2].offset(0.0, 10.0);
        assert!(!pp.login(&stored, &off).unwrap());
    }

    #[test]
    fn create_and_login_robust() {
        let pp =
            PassPoints::with_iterations(ImageDims::STUDY, DiscretizationConfig::robust(6.0), 4);
        let stored = pp.create("bob", &clicks()).unwrap();
        assert!(pp.login(&stored, &clicks()).unwrap());
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(-5.0, 4.0)).collect();
        assert!(pp.login(&stored, &wobbly).unwrap());
    }

    #[test]
    fn five_clicks_enforced() {
        let pp =
            PassPoints::with_iterations(ImageDims::STUDY, DiscretizationConfig::centered(6), 4);
        assert!(matches!(
            pp.create("alice", &clicks()[..4]),
            Err(PasswordError::WrongClickCount {
                expected: 5,
                got: 4
            })
        ));
    }

    #[test]
    fn default_constructor_uses_paper_iteration_count() {
        let pp = PassPoints::new(ImageDims::STUDY, DiscretizationConfig::centered(9));
        assert_eq!(pp.system().iterations(), 1000);
    }
}
