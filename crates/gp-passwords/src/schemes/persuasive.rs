//! Persuasive Cued Click-Points (PCCP): Cued Click-Points plus a randomly
//! positioned *viewport* during password creation.
//!
//! During enrollment the image is shaded except for a small viewport placed
//! uniformly at random; the user must click inside the viewport (or press
//! "shuffle" to move it).  This nudges click-points away from hotspots,
//! flattening the distribution attackers exploit (§2.1 of the paper).  At
//! login no viewport is shown — the user must hit their original point
//! within tolerance, exactly as in CCP.

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::schemes::cued::{CuedClickPoints, StoredCuedPassword, CCP_CLICKS};
use gp_geometry::{ImageDims, Point, Rect};
use rand::Rng;

/// Default viewport side length in pixels (the PCCP prototype used 75).
pub const DEFAULT_VIEWPORT_SIZE: f64 = 75.0;

/// A Persuasive Cued Click-Points deployment.
#[derive(Debug, Clone)]
pub struct PersuasiveCuedClickPoints {
    inner: CuedClickPoints,
    viewport_size: f64,
}

impl PersuasiveCuedClickPoints {
    /// Create a PCCP system with the default viewport size.
    pub fn new(
        image: ImageDims,
        portfolio_size: u32,
        config: DiscretizationConfig,
        iterations: u32,
    ) -> Self {
        Self::with_viewport_size(
            image,
            portfolio_size,
            config,
            iterations,
            DEFAULT_VIEWPORT_SIZE,
        )
    }

    /// Create a PCCP system with an explicit viewport size.
    pub fn with_viewport_size(
        image: ImageDims,
        portfolio_size: u32,
        config: DiscretizationConfig,
        iterations: u32,
        viewport_size: f64,
    ) -> Self {
        assert!(
            viewport_size > 0.0
                && viewport_size <= image.width as f64
                && viewport_size <= image.height as f64,
            "viewport must be positive and fit inside the image"
        );
        Self {
            inner: CuedClickPoints::new(image, portfolio_size, config, iterations),
            viewport_size,
        }
    }

    /// The underlying Cued Click-Points system (login behaviour is
    /// identical).
    pub fn inner(&self) -> &CuedClickPoints {
        &self.inner
    }

    /// Viewport side length.
    pub fn viewport_size(&self) -> f64 {
        self.viewport_size
    }

    /// Sample a uniformly random viewport fully contained in the image.
    pub fn suggest_viewport<R: Rng + ?Sized>(&self, rng: &mut R) -> Rect {
        let image = self.inner.image();
        let max_x = image.width as f64 - self.viewport_size;
        let max_y = image.height as f64 - self.viewport_size;
        let x0 = if max_x > 0.0 {
            rng.gen_range(0.0..=max_x)
        } else {
            0.0
        };
        let y0 = if max_y > 0.0 {
            rng.gen_range(0.0..=max_y)
        } else {
            0.0
        };
        Rect::new(x0, y0, x0 + self.viewport_size, y0 + self.viewport_size)
    }

    /// Sample one viewport per click (a fresh viewport is presented for each
    /// of the five images during creation).
    pub fn suggest_viewports<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Rect> {
        (0..CCP_CLICKS)
            .map(|_| self.suggest_viewport(rng))
            .collect()
    }

    /// Enroll a password, enforcing that every click lies inside the
    /// viewport that was presented for it.
    pub fn create(
        &self,
        username: &str,
        clicks: &[Point],
        viewports: &[Rect],
    ) -> Result<StoredCuedPassword, PasswordError> {
        if viewports.len() != clicks.len() {
            return Err(PasswordError::WrongClickCount {
                expected: viewports.len(),
                got: clicks.len(),
            });
        }
        for (index, (click, viewport)) in clicks.iter().zip(viewports.iter()).enumerate() {
            if !viewport.contains_closed(click) {
                return Err(PasswordError::OutsideViewport { index });
            }
        }
        self.inner.create(username, clicks)
    }

    /// Attempt a login (no viewport constraint applies at login).
    pub fn login(
        &self,
        stored: &StoredCuedPassword,
        clicks: &[Point],
    ) -> Result<bool, PasswordError> {
        self.inner.login(stored, clicks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn pccp() -> PersuasiveCuedClickPoints {
        PersuasiveCuedClickPoints::new(ImageDims::STUDY, 30, DiscretizationConfig::centered(9), 3)
    }

    fn clicks_in(viewports: &[Rect]) -> Vec<Point> {
        viewports.iter().map(|v| v.center()).collect()
    }

    #[test]
    fn viewports_fit_inside_image() {
        let system = pccp();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = system.suggest_viewport(&mut rng);
            assert!(v.x0 >= 0.0 && v.y0 >= 0.0);
            assert!(v.x1 <= ImageDims::STUDY.width as f64);
            assert!(v.y1 <= ImageDims::STUDY.height as f64);
            assert!((v.width() - DEFAULT_VIEWPORT_SIZE).abs() < 1e-9);
        }
    }

    #[test]
    fn create_requires_clicks_inside_viewports() {
        let system = pccp();
        let mut rng = StdRng::seed_from_u64(2);
        let viewports = system.suggest_viewports(&mut rng);
        let good = clicks_in(&viewports);
        let stored = system.create("alice", &good, &viewports).unwrap();
        assert!(system.login(&stored, &good).unwrap());

        // Move one click outside its viewport.
        let mut bad = good.clone();
        bad[2] = Point::new(
            (viewports[2].x0 + 200.0) % ImageDims::STUDY.width as f64,
            (viewports[2].y0 + 200.0) % ImageDims::STUDY.height as f64,
        );
        if !viewports[2].contains_closed(&bad[2]) {
            assert!(matches!(
                system.create("bob", &bad, &viewports),
                Err(PasswordError::OutsideViewport { index: 2 })
            ));
        }
    }

    #[test]
    fn login_has_no_viewport_constraint() {
        let system = pccp();
        let mut rng = StdRng::seed_from_u64(3);
        let viewports = system.suggest_viewports(&mut rng);
        let good = clicks_in(&viewports);
        let stored = system.create("alice", &good, &viewports).unwrap();
        // A wobbly login works even though the wobbled points may leave the
        // (long-forgotten) viewports.
        let wobbly: Vec<Point> = good.iter().map(|p| p.offset(7.0, 7.0)).collect();
        assert!(system.login(&stored, &wobbly).unwrap());
    }

    #[test]
    fn viewport_count_must_match_click_count() {
        let system = pccp();
        let mut rng = StdRng::seed_from_u64(4);
        let viewports = system.suggest_viewports(&mut rng);
        let good = clicks_in(&viewports);
        assert!(system.create("alice", &good[..4], &viewports).is_err());
    }

    #[test]
    fn viewport_restriction_flattens_click_distribution() {
        // Statistical sanity check of the persuasive idea: with viewports,
        // enrolled clicks spread across the whole image rather than piling
        // onto one corner hotspot.
        let system = pccp();
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs = Vec::new();
        for _ in 0..200 {
            let v = system.suggest_viewport(&mut rng);
            xs.push(v.center().x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // Mean viewport center should be near the image center, far from 0.
        assert!((mean - ImageDims::STUDY.width as f64 / 2.0).abs() < 40.0);
    }

    #[test]
    #[should_panic(expected = "viewport must be positive")]
    fn oversized_viewport_rejected() {
        PersuasiveCuedClickPoints::with_viewport_size(
            ImageDims::new(100, 100),
            10,
            DiscretizationConfig::centered(9),
            1,
            200.0,
        );
    }
}
