//! Sharded account store: N independently locked partitions keyed by a
//! hash of the account name, with optional crash-safe durability.
//!
//! The monolithic [`PasswordStore`] holds one
//! `RwLock` over every account, which serializes writers and makes the lock
//! a contention point once a serving layer fans requests out across worker
//! threads.  `ShardedPasswordStore` partitions the account space into `N`
//! small, independently locked shards — the cluster-hash-table shape from
//! the cheap-recovery literature: each shard is a self-contained unit that
//! can be persisted, reloaded and inspected on its own, so a deployment can
//! scale lock concurrency and recover (or migrate) one shard without
//! touching the rest.
//!
//! Routing is by [`shard_index`], an FNV-1a hash of the account name
//! reduced modulo the shard count.  The mapping is an implementation detail
//! of the *in-memory* layout only: the per-shard file format is the same
//! line-oriented format as the monolithic store, and loading routes every
//! record through the account hash, so shard files written under one shard
//! count can be reloaded under any other.
//!
//! # Durability
//!
//! A store opened with [`ShardedPasswordStore::open_durable`] pairs every
//! shard with an append-only [`ShardWal`]: each mutation is logged (and
//! fsynced per the configured [`FsyncPolicy`]) *before* it is applied in
//! memory and acknowledged, so a crash at any instant loses no
//! acknowledged mutation.  Snapshots ([`ShardedPasswordStore::snapshot_shard`])
//! compact a shard's log: the shard file is atomically published
//! (tmp + fsync + rename + dir fsync via [`atomic_write`]) and the WAL
//! truncated.  Recovery is crash-only: load whatever intact snapshots
//! exist, replay each WAL's intact prefix over them
//! (tolerating a torn final record), re-snapshot, and serve.
//!
//! # Lock order (machine-checked)
//!
//! Every lock in this module belongs to the canonical hierarchy
//! `snap → accounts → wal` ([`crate::lockdep::LockClass`]): a thread may
//! acquire a shard's snapshot lock, then its account map, then its WAL, and
//! never the other way around. This used to be a comment-only invariant; it
//! is now enforced twice over:
//!
//! * statically — `gp-lint` rule **L2** extracts every acquisition site,
//!   builds the inter-function acquisition-order graph, and fails CI on any
//!   inversion (`cargo run -p gp-lint -- --workspace`);
//! * dynamically — the locks below are [`crate::lockdep`] wrappers
//!   ([`OrderedMutex`] / [`OrderedRwLock`]), so in debug builds (i.e. every
//!   `cargo test` run) an out-of-order acquisition panics at the acquiring
//!   call site the first time it executes, with both lock sites named.

use crate::error::PasswordError;
use crate::lockdep::{LockClass, OrderedMutex, OrderedRwLock};
use crate::store::PasswordStore;
use crate::stored::StoredPassword;
use crate::system::GraphicalPasswordSystem;
use crate::wal::{atomic_write, fnv1a64, sync_dir, FsyncPolicy, ShardWal, WalEntry, WalOp};
use gp_crypto::SaltedHasher;
use gp_geometry::Point;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable routing function: which of `shards` partitions owns `username`.
///
/// FNV-1a over the account name ([`fnv1a64`], the same hash the WAL uses
/// as its record checksum), reduced modulo the shard count.  Cheap (a few
/// ns), well distributed for short ASCII-ish names, and — unlike a
/// `DefaultHasher` — stable across processes and Rust versions, so shard
/// assignments are reproducible in tests and benches.
pub fn shard_index(username: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "at least one shard");
    (fnv1a64(username.as_bytes()) % shards as u64) as usize
}

/// Canonical content hash of one stored record: FNV-1a over the record's
/// line serialization ([`StoredPassword::to_record`], the exact bytes the
/// WAL and the replication stream carry), finalized with the same
/// splitmix mixer the ring uses so the value diffuses into all 64 bits.
///
/// Two replicas that applied the same WAL payload hold byte-identical
/// serializations, so equal records hash equal on every node — this is
/// the unit the anti-entropy digest and the record-level diff compare.
pub fn record_digest(record: &StoredPassword) -> u64 {
    crate::ring::mix64(fnv1a64(record.to_record().as_bytes()))
}

/// Order-independent digest of a *set* of account records.
///
/// Records are folded commutatively (count, wrapping sum and xor of each
/// record's [`record_digest`]), so two stores that iterate their shards
/// in different orders — or hold the same accounts under different shard
/// counts — still produce identical digests.  Two digests are equal iff
/// the underlying record sets are equal, up to 64-bit hash collisions
/// (checked by the proptest suite in `tests/proptest_digest.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeDigest {
    /// Number of records in the range.
    pub count: u64,
    /// Wrapping sum of the records' [`record_digest`]s.
    pub sum: u64,
    /// Xor of the records' [`record_digest`]s.
    pub xor: u64,
}

impl RangeDigest {
    /// Fold one record into the digest.
    pub fn add(&mut self, record: &StoredPassword) {
        self.add_hash(record_digest(record));
    }

    /// Fold an already-computed [`record_digest`] into the digest.
    pub fn add_hash(&mut self, hash: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(hash);
        self.xor ^= hash;
    }

    /// Whether the range holds no records.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The record-level difference between a primary's range and a backup's,
/// computed by [`diff_range_entries`].  Conflicts (same account, different
/// record bytes) resolve primary-wins: the primary is the node that acked
/// the entry to a client, so its copy is authoritative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeDiff {
    /// Accounts the primary must push: missing on the backup, or present
    /// with different record bytes.
    pub push: Vec<String>,
    /// Accounts the primary must pull: present only on the backup (e.g.
    /// a primary that rejoined after records were written in its absence).
    pub pull: Vec<String>,
}

impl RangeDiff {
    /// Whether the two ranges already agree.
    pub fn is_empty(&self) -> bool {
        self.push.is_empty() && self.pull.is_empty()
    }
}

/// Diff two ranges given their sorted `(username, record_digest)` entry
/// lists (as produced by [`ShardedPasswordStore::range_entries`]).  One
/// merge pass; after copying `push` primary→backup and `pull`
/// backup→primary, both sides' [`RangeDigest`]s are equal.
pub fn diff_range_entries(primary: &[(String, u64)], backup: &[(String, u64)]) -> RangeDiff {
    let mut diff = RangeDiff::default();
    let (mut p, mut b) = (0, 0);
    while p < primary.len() && b < backup.len() {
        match primary[p].0.cmp(&backup[b].0) {
            std::cmp::Ordering::Less => {
                diff.push.push(primary[p].0.clone());
                p += 1;
            }
            std::cmp::Ordering::Greater => {
                diff.pull.push(backup[b].0.clone());
                b += 1;
            }
            std::cmp::Ordering::Equal => {
                if primary[p].1 != backup[b].1 {
                    diff.push.push(primary[p].0.clone());
                }
                p += 1;
                b += 1;
            }
        }
    }
    diff.push
        .extend(primary[p..].iter().map(|(name, _)| name.clone()));
    diff.pull
        .extend(backup[b..].iter().map(|(name, _)| name.clone()));
    diff
}

/// A resident account: the stored record plus its precomputed per-salt
/// hashing state.
///
/// [`SaltedHasher::new`] absorbs the salt's full SHA-256 blocks; caching
/// the result next to the record means a verification never re-absorbs the
/// salt (the midstate benches put that at 2–3× for long salts), and the
/// serving layer's hash jobs clone plain stack data instead of hashing.
#[derive(Debug, Clone)]
struct CachedAccount {
    stored: StoredPassword,
    hasher: SaltedHasher,
}

impl CachedAccount {
    fn new(stored: StoredPassword) -> Self {
        let hasher = SaltedHasher::new(&stored.hash.salt);
        Self { stored, hasher }
    }
}

/// One partition: its own lock, its own accounts, its own counters.
#[derive(Debug)]
struct Shard {
    accounts: OrderedRwLock<BTreeMap<String, CachedAccount>>,
    enrolls: AtomicU64,
    verifies: AtomicU64,
    lookups: AtomicU64,
}

impl Default for Shard {
    fn default() -> Self {
        Self {
            accounts: OrderedRwLock::new(LockClass::ACCOUNTS, BTreeMap::new()),
            enrolls: AtomicU64::new(0),
            verifies: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }
}

/// Point-in-time snapshot of one shard's size and traffic counters.
///
/// Returned by [`ShardedPasswordStore::stats`]; the serving layer exposes
/// these so operators (and the `authload` bench) can see whether accounts
/// and traffic actually spread across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of the shard this snapshot describes.
    pub shard: usize,
    /// Enrolled accounts currently resident in the shard.
    pub accounts: usize,
    /// Successful enrollments routed to the shard since creation.
    pub enrolls: u64,
    /// Verification attempts routed to the shard since creation.
    pub verifies: u64,
    /// Record lookups (`get`) routed to the shard since creation.
    pub lookups: u64,
}

/// Tuning for a durable store: when appends hit stable storage and when
/// per-shard logs are compacted into snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// When WAL appends are flushed to stable storage (the
    /// acknowledgement-latency vs. crash-loss-window trade).
    pub fsync: FsyncPolicy,
    /// WAL size (bytes) past which [`ShardedPasswordStore::snapshot_if_past`]
    /// compacts the shard.
    pub snapshot_threshold_bytes: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            snapshot_threshold_bytes: 1024 * 1024,
        }
    }
}

/// Aggregate durability counters for a durable store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityStats {
    /// Total bytes currently held across every shard's WAL.
    pub wal_bytes: u64,
    /// WAL records appended since the store was opened.
    pub wal_appends: u64,
    /// Fsyncs issued across every WAL since the store was opened.
    pub wal_syncs: u64,
    /// Snapshot compactions performed since the store was opened.
    pub snapshots: u64,
    /// WAL records replayed during recovery at open.
    pub replayed_records: u64,
    /// WAL files whose final record was torn by a crash (recovered by
    /// dropping only the torn tail).
    pub torn_tails: u64,
    /// Group-commit barriers executed ([`ShardedPasswordStore::commit_shards`]):
    /// each one flushes *every* deferred append across its shard set in
    /// at most one fsync per shard.
    pub group_commits: u64,
}

/// The durable half of a store: the directory, the per-shard logs, and
/// recovery/compaction counters.
#[derive(Debug)]
struct DurabilityState {
    dir: PathBuf,
    options: DurabilityOptions,
    wals: Vec<OrderedMutex<ShardWal>>,
    /// Serializes concurrent snapshots of the same shard (they would
    /// otherwise race on the snapshot tmp file).  Deliberately separate
    /// from the WAL mutex so the append path never waits on snapshot
    /// file I/O.
    snap_locks: Vec<OrderedMutex<()>>,
    snapshots: AtomicU64,
    group_commits: AtomicU64,
    replayed_records: u64,
    torn_tails: u64,
}

fn storage_error(context: &str, e: impl std::fmt::Display) -> PasswordError {
    PasswordError::Storage {
        reason: format!("{context}: {e}"),
    }
}

fn shard_pwd_name(shard: usize) -> String {
    format!("shard-{shard:03}.pwd")
}

fn shard_wal_name(shard: usize) -> String {
    format!("shard-{shard:03}.wal")
}

/// Parse `shard-NNN.<ext>` (including `.pwd.tmp` leftovers) into the
/// shard index, for stale-file cleanup.
fn parse_shard_file_index(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("shard-")?;
    let digits = rest.split('.').next()?;
    if !matches!(
        rest.split_once('.'),
        Some((_, "pwd" | "wal" | "pwd.tmp" | "wal.tmp"))
    ) {
        return None;
    }
    digits.parse().ok()
}

/// Remove shard files (`.pwd`, `.wal`, stray `.tmp`) whose index is at or
/// past `shards`.  Without this, saving a store with fewer shards into a
/// directory previously saved with more leaves stale `shard-NNN.pwd`
/// files behind, and a later load would merge their outdated records back
/// in — resurrecting removed or superseded accounts.
fn remove_stale_shard_files(dir: &Path, shards: usize) -> std::io::Result<()> {
    let mut removed_any = false;
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if parse_shard_file_index(name).is_some_and(|index| index >= shards) {
            std::fs::remove_file(entry.path())?;
            removed_any = true;
        }
    }
    if removed_any {
        sync_dir(dir)?;
    }
    Ok(())
}

/// A concurrent account store partitioned into independently locked shards.
///
/// The API mirrors [`PasswordStore`] so call sites can switch between the
/// two; cross-shard read operations (`len`, `usernames`, `records`) take
/// the shard locks one at a time and are therefore *not* a consistent
/// global snapshot under concurrent writes — exactly the trade the sharded
/// design makes.
///
/// Stores created with [`ShardedPasswordStore::new`] are purely in-memory
/// (mutations return `Ok` without touching disk); stores opened with
/// [`ShardedPasswordStore::open_durable`] write every mutation to a
/// per-shard WAL before acknowledging it.
#[derive(Debug)]
pub struct ShardedPasswordStore {
    shards: Vec<Shard>,
    durability: Option<DurabilityState>,
}

impl ShardedPasswordStore {
    /// Create an empty in-memory store with `shards` partitions (clamped
    /// to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
            durability: None,
        }
    }

    /// Open (or create) a crash-safe durable store under `dir` with
    /// `shards` partitions (clamped to ≥ 1).
    ///
    /// Recovery is crash-only and runs unconditionally:
    ///
    /// 1. every intact `shard-NNN.pwd` snapshot is loaded (records
    ///    re-route by account hash, so the on-disk shard count need not
    ///    match `shards`);
    /// 2. every `shard-NNN.wal` is replayed over the snapshots, in file
    ///    order then append order, tolerating a torn final record;
    /// 3. each shard is re-snapshotted atomically and its WAL truncated,
    ///    so the directory is compact and `shards`-shaped again;
    /// 4. shard files beyond `shards` are removed (their records were
    ///    re-routed into the surviving shards by step 3).
    ///
    /// After recovery, every mutation appends to the owning shard's WAL
    /// (flushed per `options.fsync`) before it is acknowledged.
    pub fn open_durable(
        dir: &Path,
        shards: usize,
        options: DurabilityOptions,
    ) -> Result<Self, PasswordError> {
        let shards = shards.max(1);
        std::fs::create_dir_all(dir)
            .map_err(|e| storage_error(&format!("create {}", dir.display()), e))?;
        let mut store = Self::new(shards);

        // 1) Newest intact snapshots.
        let mut snapshot_paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| storage_error(&format!("read {}", dir.display()), e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".pwd"))
            })
            .collect();
        snapshot_paths.sort();
        for path in snapshot_paths {
            let contents = std::fs::read_to_string(&path)
                .map_err(|e| storage_error(&format!("read {}", path.display()), e))?;
            let parsed = PasswordStore::from_file_contents(&contents).map_err(|e| {
                PasswordError::CorruptRecord {
                    reason: format!("{}: {e}", path.display()),
                }
            })?;
            for record in parsed.records() {
                store.apply_insert(record);
            }
        }

        // 2) WAL tails over the snapshots.
        let mut wal_paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| storage_error(&format!("read {}", dir.display()), e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".wal"))
            })
            .collect();
        wal_paths.sort();
        let mut replayed_records = 0u64;
        let mut torn_tails = 0u64;
        for path in wal_paths {
            let replay = ShardWal::replay(&path)
                .map_err(|e| storage_error(&format!("replay {}", path.display()), e))?;
            replayed_records += replay.entries.len() as u64;
            torn_tails += u64::from(replay.torn_bytes > 0);
            for entry in replay.entries {
                match entry {
                    WalEntry::Enroll(record) | WalEntry::Update(record) => {
                        store.apply_insert(record)
                    }
                    WalEntry::Remove(username) => {
                        store.apply_remove(&username);
                    }
                }
            }
        }

        // 3) Open this shard count's logs and compact everything down to
        //    fresh snapshots + empty WALs.
        let mut wals = Vec::with_capacity(shards);
        for shard in 0..shards {
            let path = dir.join(shard_wal_name(shard));
            let wal = ShardWal::open_or_create(&path, options.fsync)
                .map_err(|e| storage_error(&format!("open {}", path.display()), e))?;
            wals.push(OrderedMutex::new(LockClass::WAL, wal));
        }
        store.durability = Some(DurabilityState {
            dir: dir.to_path_buf(),
            options,
            wals,
            snap_locks: (0..shards)
                .map(|_| OrderedMutex::new(LockClass::SNAP, ()))
                .collect(),
            snapshots: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            replayed_records,
            torn_tails,
        });
        store.snapshot_all()?;

        // 4) Nothing beyond the current shard count may survive to be
        //    merged back in by a future recovery.
        remove_stale_shard_files(dir, shards)
            .map_err(|e| storage_error(&format!("clean {}", dir.display()), e))?;
        Ok(store)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether mutations are written to a WAL before acknowledgement.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Aggregate WAL/snapshot/recovery counters, when durable.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        let d = self.durability.as_ref()?;
        let mut stats = DurabilityStats {
            snapshots: d.snapshots.load(Ordering::Relaxed),
            group_commits: d.group_commits.load(Ordering::Relaxed),
            replayed_records: d.replayed_records,
            torn_tails: d.torn_tails,
            ..DurabilityStats::default()
        };
        for wal in &d.wals {
            let wal = wal.lock();
            stats.wal_bytes += wal.len_bytes();
            stats.wal_appends += wal.appends();
            stats.wal_syncs += wal.syncs();
        }
        Some(stats)
    }

    fn shard_for(&self, username: &str) -> &Shard {
        &self.shards[shard_index(username, self.shards.len())]
    }

    /// Total enrolled accounts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.accounts.read().len()).sum()
    }

    /// Whether no shard holds any account.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.accounts.read().is_empty())
    }

    /// Enroll a new account using the given system.  Fails if the account
    /// already exists.  Only the owning shard's lock is taken; on a
    /// durable store the record is logged before the acknowledgement.
    pub fn enroll(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<(), PasswordError> {
        let stored = system.enroll(username, clicks)?;
        self.insert_new(stored)
    }

    /// Insert a pre-built record only if the account does not exist yet —
    /// the duplicate check, the WAL append and the insert happen under one
    /// shard-lock acquisition, so concurrent enrollments of the same name
    /// cannot both succeed.  The serving layer's split-phase enrollment
    /// settles through this (the hash was computed before the lock is
    /// taken); on a durable store the WAL append (and, under
    /// [`FsyncPolicy::Always`], its fsync) completes before `Ok` is
    /// returned, so an acked enrollment survives any crash.
    pub fn insert_new(&self, stored: StoredPassword) -> Result<(), PasswordError> {
        let index = shard_index(&stored.username, self.shards.len());
        let shard = &self.shards[index];
        let entry = CachedAccount::new(stored);
        let mut accounts = shard.accounts.write();
        if accounts.contains_key(&entry.stored.username) {
            return Err(PasswordError::DuplicateAccount {
                username: entry.stored.username.clone(),
            });
        }
        // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
        self.wal_append(index, WalOp::Enroll, &entry.stored)?;
        accounts.insert(entry.stored.username.clone(), entry);
        shard.enrolls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The group-commit half of [`ShardedPasswordStore::insert_new`]:
    /// duplicate check, *deferred* WAL append (no per-record fsync) and
    /// in-memory insert under one shard-lock acquisition.  Returns the
    /// owning shard's index — the caller's group-commit set.
    ///
    /// The record is in the log and visible in memory, but **not yet
    /// committed**: a crash before the next
    /// [`ShardedPasswordStore::commit_shards`] barrier over that shard
    /// may lose it.  The caller must not acknowledge the enrollment (and
    /// must hold back same-account reads it intends to ack — the serving
    /// layer's per-account pending table) until the barrier returns.
    pub fn insert_new_deferred(&self, stored: StoredPassword) -> Result<usize, PasswordError> {
        let index = shard_index(&stored.username, self.shards.len());
        let shard = &self.shards[index];
        let entry = CachedAccount::new(stored);
        let mut accounts = shard.accounts.write();
        if accounts.contains_key(&entry.stored.username) {
            return Err(PasswordError::DuplicateAccount {
                username: entry.stored.username.clone(),
            });
        }
        if let Some(d) = &self.durability {
            d.wals[index]
                .lock()
                // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
                .append_record_deferred(WalOp::Enroll, &entry.stored)
                .map_err(|e| storage_error(&format!("wal append (shard {index})"), e))?;
        }
        accounts.insert(entry.stored.username.clone(), entry);
        shard.enrolls.fetch_add(1, Ordering::Relaxed);
        Ok(index)
    }

    /// The group-commit barrier: flush every deferred append in the named
    /// shards per the fsync policy — at most **one** fsync per distinct
    /// shard, however many records each accumulated.  Only after this
    /// returns `Ok` may the mutations inserted via
    /// [`ShardedPasswordStore::insert_new_deferred`] be acknowledged.
    /// Duplicate shard indices are welcome (the per-shard flush is
    /// idempotent); a no-op on an in-memory store or an empty set.
    pub fn commit_shards(
        &self,
        shards: impl IntoIterator<Item = usize>,
    ) -> Result<(), PasswordError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let mut seen = vec![false; self.shards.len()];
        let mut any = false;
        for index in shards {
            if std::mem::replace(&mut seen[index], true) {
                continue;
            }
            d.wals[index]
                .lock()
                .group_commit()
                .map_err(|e| storage_error(&format!("wal group commit (shard {index})"), e))?;
            any = true;
        }
        if any {
            d.group_commits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Commit-sequence watermark of one shard's WAL, when durable:
    /// `(appended, durable)`.  Test/observability hook for the
    /// group-commit invariant `durable == appended` after a barrier.
    pub fn wal_watermark(&self, shard: usize) -> Option<(u64, u64)> {
        let d = self.durability.as_ref()?;
        let wal = d.wals[shard].lock();
        Some((wal.appended_seq(), wal.durable_seq()))
    }

    /// Insert or replace a pre-built record (bulk loading, migration).
    /// On a durable store the record is logged (as an update) before the
    /// in-memory apply.
    pub fn insert(&self, stored: StoredPassword) -> Result<(), PasswordError> {
        let index = shard_index(&stored.username, self.shards.len());
        let entry = CachedAccount::new(stored);
        let mut accounts = self.shards[index].accounts.write();
        // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
        self.wal_append(index, WalOp::Update, &entry.stored)?;
        accounts.insert(entry.stored.username.clone(), entry);
        Ok(())
    }

    /// Durably apply a WAL entry streamed from a replication primary.
    ///
    /// The entry is appended to the owning shard's local WAL (flushed per
    /// the fsync policy) *before* the in-memory apply, under one
    /// shard-lock acquisition — so when this returns `Ok`, acknowledging
    /// the replication message gives the primary the same durability
    /// guarantee a local ack carries.  Inserts apply as insert-or-replace
    /// (no duplicate check): a primary that retried a send after a
    /// connection drop may deliver the same record twice, and redelivery
    /// must be idempotent.
    pub fn apply_replicated(&self, entry: &WalEntry) -> Result<(), PasswordError> {
        let index = shard_index(entry.username(), self.shards.len());
        match entry {
            WalEntry::Enroll(record) | WalEntry::Update(record) => {
                let cached = CachedAccount::new(record.clone());
                let mut accounts = self.shards[index].accounts.write();
                // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
                self.wal_append(index, entry.op(), record)?;
                accounts.insert(cached.stored.username.clone(), cached);
            }
            WalEntry::Remove(username) => {
                let mut accounts = self.shards[index].accounts.write();
                if let Some(d) = &self.durability {
                    d.wals[index]
                        .lock()
                        // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
                        .append_remove(username)
                        .map_err(|e| storage_error(&format!("wal append (shard {index})"), e))?;
                }
                accounts.remove(username);
            }
        }
        Ok(())
    }

    /// In-memory insert/replace with no logging — recovery replay and
    /// snapshot loading only (the data is already on disk).
    fn apply_insert(&self, stored: StoredPassword) {
        let entry = CachedAccount::new(stored);
        let shard = self.shard_for(&entry.stored.username);
        shard
            .accounts
            .write()
            .insert(entry.stored.username.clone(), entry);
    }

    /// In-memory removal with no logging (recovery replay only).
    fn apply_remove(&self, username: &str) -> bool {
        self.shard_for(username)
            .accounts
            .write()
            .remove(username)
            .is_some()
    }

    /// Append to shard `index`'s WAL, if durable.  Called with the
    /// shard's account lock held, so WAL order matches apply order.
    fn wal_append(
        &self,
        index: usize,
        op: WalOp,
        record: &StoredPassword,
    ) -> Result<(), PasswordError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        d.wals[index]
            .lock()
            .append_record(op, record)
            .map_err(|e| storage_error(&format!("wal append (shard {index})"), e))
    }

    /// Fetch a copy of an account's stored record.
    pub fn get(&self, username: &str) -> Option<StoredPassword> {
        let shard = self.shard_for(username);
        shard.lookups.fetch_add(1, Ordering::Relaxed);
        shard
            .accounts
            .read()
            .get(username)
            .map(|entry| entry.stored.clone())
    }

    /// Fetch a copy of an account's stored record together with its cached
    /// per-salt hashing state, so a verify path can skip re-absorbing the
    /// salt entirely (the hasher clone is a plain stack copy).
    pub fn get_cached(&self, username: &str) -> Option<(StoredPassword, SaltedHasher)> {
        let shard = self.shard_for(username);
        shard.lookups.fetch_add(1, Ordering::Relaxed);
        shard
            .accounts
            .read()
            .get(username)
            .map(|entry| (entry.stored.clone(), entry.hasher.clone()))
    }

    /// Remove an account; returns whether it existed.  On a durable store
    /// the removal is logged before it is applied (and acknowledged), so
    /// a recovered store cannot resurrect the account.
    pub fn remove(&self, username: &str) -> Result<bool, PasswordError> {
        let index = shard_index(username, self.shards.len());
        let mut accounts = self.shards[index].accounts.write();
        if !accounts.contains_key(username) {
            return Ok(false);
        }
        if let Some(d) = &self.durability {
            d.wals[index]
                .lock()
                // gp-lint: allow(L8, by-design durability barrier: the accounts lock orders the WAL append ahead of the map mutation)
                .append_remove(username)
                .map_err(|e| storage_error(&format!("wal append (shard {index})"), e))?;
        }
        accounts.remove(username);
        Ok(true)
    }

    /// Verify a login attempt for an account (scalar path; the serving
    /// layer's batch verifier uses [`GraphicalPasswordSystem`]'s split-phase
    /// API with records fetched via [`ShardedPasswordStore::get`]).
    pub fn verify(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<bool, PasswordError> {
        let stored = self
            .get(username)
            .ok_or_else(|| PasswordError::UnknownAccount {
                username: username.to_string(),
            })?;
        self.shard_for(username)
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        system.verify(&stored, clicks)
    }

    /// Record a verification routed through the split-phase/batched path,
    /// so shard traffic counters stay meaningful for the serving layer.
    pub fn note_verified(&self, username: &str) {
        self.shard_for(username)
            .verifies
            .fetch_add(1, Ordering::Relaxed);
    }

    /// All account names across shards, sorted.
    pub fn usernames(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.accounts.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// All stored records across shards, sorted by account name.
    pub fn records(&self) -> Vec<StoredPassword> {
        let mut records: Vec<StoredPassword> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.accounts
                    .read()
                    .values()
                    .map(|entry| entry.stored.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        records.sort_by(|a, b| a.username.cmp(&b.username));
        records
    }

    /// The stored records whose account name satisfies `range`, sorted by
    /// name.  Each shard is scanned under its own read lock (shard-level
    /// consistency: a record is either in the result or not, never torn),
    /// which is what a catch-up transfer streams to a (re)joining node.
    pub fn records_in_range(&self, range: impl Fn(&str) -> bool) -> Vec<StoredPassword> {
        let mut records: Vec<StoredPassword> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.accounts
                    .read()
                    .values()
                    .filter(|entry| range(&entry.stored.username))
                    .map(|entry| entry.stored.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        records.sort_by(|a, b| a.username.cmp(&b.username));
        records
    }

    /// `(username, record_digest)` pairs for every account in `range`,
    /// sorted by name — the record-level summary two replicas exchange
    /// (and [`diff_range_entries`] merges) once their [`RangeDigest`]s
    /// disagree.
    pub fn range_entries(&self, range: impl Fn(&str) -> bool) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.accounts
                    .read()
                    .values()
                    .filter(|entry| range(&entry.stored.username))
                    .map(|entry| (entry.stored.username.clone(), record_digest(&entry.stored)))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Order-independent digest over every account in `range` — the flat
    /// per-range digest the anti-entropy exchange compares between a
    /// primary and its backup.  Equal iff the two record sets are equal
    /// (modulo 64-bit collisions).
    pub fn range_digest(&self, range: impl Fn(&str) -> bool) -> RangeDigest {
        let mut digest = RangeDigest::default();
        for shard in &self.shards {
            for entry in shard.accounts.read().values() {
                if range(&entry.stored.username) {
                    digest.add(&entry.stored);
                }
            }
        }
        digest
    }

    /// Per-shard size and traffic snapshot.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                accounts: s.accounts.read().len(),
                enrolls: s.enrolls.load(Ordering::Relaxed),
                verifies: s.verifies.load(Ordering::Relaxed),
                lookups: s.lookups.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Render one shard's accounts in the line-oriented password-file
    /// format under an already-held lock.
    fn render_shard(
        accounts: &BTreeMap<String, CachedAccount>,
        shard: usize,
        total: usize,
    ) -> String {
        let mut out = format!("# gp-passwords store v1 (shard {shard}/{total})\n");
        for entry in accounts.values() {
            out.push_str(&entry.stored.to_record());
            out.push('\n');
        }
        out
    }

    /// Serialize one shard in the line-oriented password-file format (the
    /// same format the monolithic store writes, so shard files are also
    /// valid whole-store files).
    pub fn shard_file_contents(&self, shard: usize) -> String {
        Self::render_shard(
            &self.shards[shard].accounts.read(),
            shard,
            self.shards.len(),
        )
    }

    /// Persist every shard as `shard-NNN.pwd` under `dir` (created if
    /// absent), then remove shard files beyond the current count.
    ///
    /// Each file is published atomically (tmp + fsync + rename + dir
    /// fsync): a crash mid-save leaves every shard file as either its
    /// complete old version or its complete new version, never a
    /// truncated hybrid that poisons the whole directory at load time.  A
    /// crash between two shards' renames loses at most the not-yet-renamed
    /// shards' *new* contents — the old snapshots remain intact.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for shard in 0..self.shards.len() {
            atomic_write(
                &dir.join(shard_pwd_name(shard)),
                self.shard_file_contents(shard).as_bytes(),
            )?;
        }
        remove_stale_shard_files(dir, self.shards.len())
    }

    /// Load every `shard-NNN.pwd` file under `dir` into an in-memory
    /// store with `shards` partitions.  Records are re-routed by account
    /// hash, so the on-disk shard count need not match `shards`.  (For a
    /// store that also replays WALs and stays durable, use
    /// [`ShardedPasswordStore::open_durable`].)
    pub fn load_from_dir(dir: &Path, shards: usize) -> Result<Self, PasswordError> {
        let store = Self::new(shards);
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| PasswordError::CorruptRecord {
                reason: format!("read shard dir {}: {e}", dir.display()),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".pwd"))
            })
            .collect();
        entries.sort();
        for path in entries {
            let contents =
                std::fs::read_to_string(&path).map_err(|e| PasswordError::CorruptRecord {
                    reason: format!("read {}: {e}", path.display()),
                })?;
            // Reuse the monolithic parser (comments, line numbers) and
            // re-route its records through the hash.
            let parsed = PasswordStore::from_file_contents(&contents).map_err(|e| {
                PasswordError::CorruptRecord {
                    reason: format!("{}: {e}", path.display()),
                }
            })?;
            for record in parsed.records() {
                store.apply_insert(record);
            }
        }
        Ok(store)
    }

    /// Atomically publish shard `index`'s snapshot and truncate its WAL.
    /// No-op on an in-memory store.
    ///
    /// Locking: the shard's account lock is held for *read* (and the WAL
    /// mutex alongside it) only while the contents are rendered in
    /// memory — never across file I/O — so concurrent verifies proceed
    /// untouched and writers wait at most for the render, not for the
    /// disk.  By that lock order, every record in the WAL at render time
    /// is also in the rendered contents.  After the snapshot is
    /// published, the WAL is truncated only if *no* record was appended
    /// while the file was being written; a raced truncation is simply
    /// skipped — the log still contains everything (replaying it over
    /// the new snapshot is idempotent) and the next compaction pass
    /// retries with fresher contents.
    pub fn snapshot_shard(&self, index: usize) -> Result<(), PasswordError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        // One snapshot of a given shard at a time (they would race on
        // the tmp file); appenders never take this lock.
        let _serialize = d.snap_locks[index].lock();
        let (contents, covered_len) = {
            let accounts = self.shards[index].accounts.read();
            let wal_len = d.wals[index].lock().len_bytes();
            (
                Self::render_shard(&accounts, index, self.shards.len()),
                wal_len,
            )
        };
        let path = d.dir.join(shard_pwd_name(index));
        // gp-lint: allow(L8, the snap lock exists to serialize snapshot writers; the blocking write is the protected work)
        atomic_write(&path, contents.as_bytes())
            .map_err(|e| storage_error(&format!("snapshot {}", path.display()), e))?;
        let mut wal = d.wals[index].lock();
        if wal.len_bytes() == covered_len {
            wal.reset()
                .map_err(|e| storage_error(&format!("truncate wal (shard {index})"), e))?;
        }
        d.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot every shard (graceful shutdown, recovery compaction).
    /// No-op on an in-memory store.
    pub fn snapshot_all(&self) -> Result<(), PasswordError> {
        for shard in 0..self.shards.len() {
            self.snapshot_shard(shard)?;
        }
        Ok(())
    }

    /// Snapshot every shard whose WAL has grown past `threshold_bytes`;
    /// returns how many were compacted.  The background compaction entry
    /// point: cheap when nothing crossed the threshold (one short mutex
    /// acquisition per shard).
    pub fn snapshot_if_past(&self, threshold_bytes: u64) -> Result<usize, PasswordError> {
        let Some(d) = &self.durability else {
            return Ok(0);
        };
        let mut compacted = 0;
        for index in 0..self.shards.len() {
            if d.wals[index].lock().len_bytes() > threshold_bytes {
                self.snapshot_shard(index)?;
                compacted += 1;
            }
        }
        Ok(compacted)
    }

    /// Snapshot every shard whose WAL crossed the configured threshold
    /// ([`DurabilityOptions::snapshot_threshold_bytes`]).
    pub fn snapshot_if_due(&self) -> Result<usize, PasswordError> {
        match &self.durability {
            Some(d) => self.snapshot_if_past(d.options.snapshot_threshold_bytes),
            None => Ok(0),
        }
    }

    /// Force every WAL to stable storage now, regardless of the fsync
    /// policy (graceful shutdown under [`FsyncPolicy::Batch`] /
    /// [`FsyncPolicy::Never`]).
    pub fn sync_wals(&self) -> Result<(), PasswordError> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        for (index, wal) in d.wals.iter().enumerate() {
            wal.lock()
                .sync()
                .map_err(|e| storage_error(&format!("wal sync (shard {index})"), e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscretizationConfig;
    use crate::policy::PasswordPolicy;

    fn system() -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            3,
        )
    }

    fn clicks(seed: f64) -> Vec<Point> {
        (0..5)
            .map(|i| Point::new(30.0 + seed + 70.0 * i as f64, 20.0 + seed + 55.0 * i as f64))
            .collect()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gp-shard-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 16] {
            for name in ["alice", "bob", "", "ユーザー", "user-12345"] {
                let idx = shard_index(name, shards);
                assert!(idx < shards);
                assert_eq!(idx, shard_index(name, shards), "deterministic");
            }
        }
        // Known-vector stability: the persistence layout documentation
        // depends on this mapping not drifting silently.
        assert_eq!(shard_index("alice", 4), shard_index("alice", 4));
        assert_ne!(
            (0..64).map(|i| shard_index(&format!("user{i}"), 4)).max(),
            Some(0),
            "64 users must not all land in shard 0"
        );
    }

    #[test]
    fn enroll_get_verify_remove_across_shards() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        assert!(store.is_empty());
        assert!(!store.is_durable());
        for i in 0..16 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.usernames().len(), 16);
        assert!(store.verify(&sys, "user3", &clicks(3.0)).unwrap());
        assert!(!store.verify(&sys, "user3", &clicks(50.0)).unwrap());
        assert!(store.remove("user3").unwrap());
        assert!(!store.remove("user3").unwrap());
        assert!(store.get("user3").is_none());
        assert_eq!(store.len(), 15);
    }

    #[test]
    fn accounts_spread_over_multiple_shards() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        for i in 0..64 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.len(), 4);
        let populated = stats.iter().filter(|s| s.accounts > 0).count();
        assert!(populated >= 3, "64 accounts should hit ≥3 of 4 shards");
        assert_eq!(stats.iter().map(|s| s.accounts).sum::<usize>(), 64);
        assert_eq!(stats.iter().map(|s| s.enrolls).sum::<u64>(), 64);
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let store = ShardedPasswordStore::new(2);
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        assert!(matches!(
            store.enroll(&sys, "alice", &clicks(1.0)),
            Err(PasswordError::DuplicateAccount { .. })
        ));
    }

    #[test]
    fn unknown_account_is_an_error_not_a_failed_login() {
        let store = ShardedPasswordStore::new(2);
        assert!(matches!(
            store.verify(&system(), "ghost", &clicks(0.0)),
            Err(PasswordError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedPasswordStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.enroll(&system(), "alice", &clicks(0.0)).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn per_shard_files_round_trip_across_shard_counts() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        for i in 0..12 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        let dir = temp_dir("roundtrip");
        store.save_to_dir(&dir).unwrap();

        // Reload under a *different* shard count: records re-route by hash.
        let reloaded = ShardedPasswordStore::load_from_dir(&dir, 7).unwrap();
        assert_eq!(reloaded.shard_count(), 7);
        assert_eq!(reloaded.len(), 12);
        for i in 0..12 {
            assert!(reloaded
                .verify(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap());
        }

        // A single shard file is also a valid monolithic store file.
        let single = PasswordStore::from_file_contents(&store.shard_file_contents(0)).unwrap();
        assert_eq!(single.len(), store.stats()[0].accounts);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_files() {
        let store = ShardedPasswordStore::new(2);
        let sys = system();
        for i in 0..6 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        let dir = temp_dir("atomic-save");
        store.save_to_dir(&dir).unwrap();
        store.save_to_dir(&dir).unwrap(); // overwrite path exercises rename
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| n.ends_with(".pwd")),
            "only published snapshots remain: {names:?}"
        );
        assert_eq!(names.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saving_fewer_shards_removes_stale_files_instead_of_resurrecting() {
        let sys = system();
        let dir = temp_dir("stale");

        // Save 8 shards holding 24 accounts…
        let wide = ShardedPasswordStore::new(8);
        for i in 0..24 {
            wide.enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        wide.save_to_dir(&dir).unwrap();

        // …then remove half the accounts and save with 2 shards.
        for i in 12..24 {
            assert!(wide.remove(&format!("user{i}")).unwrap());
        }
        let narrow = ShardedPasswordStore::new(2);
        for record in wide.records() {
            narrow.insert(record).unwrap();
        }
        narrow.save_to_dir(&dir).unwrap();

        // Stale shard-002..007 files are gone; a load sees exactly the 12
        // surviving accounts instead of merging removed ones back in.
        let reloaded = ShardedPasswordStore::load_from_dir(&dir, 4).unwrap();
        assert_eq!(reloaded.len(), 12, "{:?}", reloaded.usernames());
        for i in 0..12 {
            assert!(reloaded.get(&format!("user{i}")).is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_store_recovers_from_wal_alone() {
        let sys = system();
        let dir = temp_dir("durable-wal");
        {
            let store =
                ShardedPasswordStore::open_durable(&dir, 4, DurabilityOptions::default()).unwrap();
            assert!(store.is_durable());
            for i in 0..10 {
                store
                    .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                    .unwrap();
            }
            assert!(store.remove("user9").unwrap());
            let stats = store.durability_stats().unwrap();
            assert_eq!(stats.wal_appends, 11, "10 enrolls + 1 remove");
            assert!(stats.wal_syncs >= 11, "Always fsyncs every append");
            // No graceful save: the store is simply dropped, as in a
            // crash after the last ack.
        }
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 4, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 9);
        assert!(recovered.get("user9").is_none(), "removal replayed");
        for i in 0..9 {
            assert!(recovered
                .verify(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap());
        }
        let stats = recovered.durability_stats().unwrap();
        assert_eq!(stats.replayed_records, 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_snapshot_compacts_and_recovery_replays_the_tail() {
        let sys = system();
        let dir = temp_dir("durable-snap");
        {
            let store =
                ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
            for i in 0..6 {
                store
                    .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                    .unwrap();
            }
            // Compact: WALs empty, snapshots hold the 6 accounts.
            assert_eq!(store.snapshot_if_past(0).unwrap(), 2);
            let stats = store.durability_stats().unwrap();
            assert_eq!(stats.wal_bytes, 2 * crate::wal::WAL_MAGIC.len() as u64);
            // The tail: 2 more enrolls only the WAL knows about.
            for i in 6..8 {
                store
                    .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                    .unwrap();
            }
        }
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 8, "snapshot + WAL tail");
        for i in 0..8 {
            assert!(recovered
                .verify(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap());
        }
        // Recovery replays only the un-compacted tail.
        assert_eq!(recovered.durability_stats().unwrap().replayed_records, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_reopen_under_different_shard_count_reroutes_and_cleans() {
        let sys = system();
        let dir = temp_dir("durable-reshard");
        {
            let store =
                ShardedPasswordStore::open_durable(&dir, 8, DurabilityOptions::default()).unwrap();
            for i in 0..16 {
                store
                    .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                    .unwrap();
            }
        }
        let narrow =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        assert_eq!(narrow.shard_count(), 2);
        assert_eq!(narrow.len(), 16);
        drop(narrow);
        // Only shard-000/001 files survive on disk.
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "shard-000.pwd".to_string(),
                "shard-000.wal".to_string(),
                "shard-001.pwd".to_string(),
                "shard-001.wal".to_string()
            ]
        );
        // And a fresh wide open still sees every account.
        let wide =
            ShardedPasswordStore::open_durable(&dir, 5, DurabilityOptions::default()).unwrap();
        assert_eq!(wide.len(), 16);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn apply_replicated_is_durable_and_idempotent() {
        use crate::wal::WalEntry;
        let sys = system();
        let dir = temp_dir("replicated");
        {
            let store =
                ShardedPasswordStore::open_durable(&dir, 4, DurabilityOptions::default()).unwrap();
            let record = sys.enroll("alice", &clicks(0.0)).unwrap();
            store
                .apply_replicated(&WalEntry::Enroll(record.clone()))
                .unwrap();
            // Redelivery (a primary retrying after a dropped connection)
            // must not fail on the duplicate.
            store.apply_replicated(&WalEntry::Enroll(record)).unwrap();
            let bob = sys.enroll("bob", &clicks(5.0)).unwrap();
            store.apply_replicated(&WalEntry::Update(bob)).unwrap();
            store
                .apply_replicated(&WalEntry::Remove("bob".into()))
                .unwrap();
            assert_eq!(store.len(), 1);
            // No graceful save — the ack's durability must come from the
            // WAL append inside apply_replicated alone.
        }
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 4, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered.verify(&sys, "alice", &clicks(0.0)).unwrap());
        assert!(recovered.get("bob").is_none(), "removal replicated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_inserts_group_commit_with_one_fsync_per_shard() {
        let sys = system();
        let dir = temp_dir("group-commit");
        {
            let store =
                ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
            let syncs_before = store.durability_stats().unwrap().wal_syncs;
            let mut touched = Vec::new();
            for i in 0..8 {
                let record = sys.enroll(&format!("user{i}"), &clicks(i as f64)).unwrap();
                touched.push(store.insert_new_deferred(record).unwrap());
            }
            // Before the barrier: appended but not durable.
            for shard in 0..2 {
                let (appended, durable) = store.wal_watermark(shard).unwrap();
                assert!(durable <= appended);
            }
            store.commit_shards(touched.iter().copied()).unwrap();
            let stats = store.durability_stats().unwrap();
            assert!(
                stats.wal_syncs - syncs_before <= 2,
                "8 enrolls over 2 shards: at most one fsync per shard, got {}",
                stats.wal_syncs - syncs_before
            );
            assert_eq!(stats.group_commits, 1);
            for shard in 0..2 {
                let (appended, durable) = store.wal_watermark(shard).unwrap();
                assert_eq!(appended, durable, "the barrier commits every append");
            }
            // Crash (drop without snapshot): every committed record must
            // recover from the WAL alone.
        }
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 8);
        for i in 0..8 {
            assert!(recovered
                .verify(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_insert_still_rejects_duplicates_and_commit_is_cheap_when_empty() {
        let sys = system();
        let dir = temp_dir("group-dup");
        let store =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        let record = sys.enroll("alice", &clicks(0.0)).unwrap();
        store.insert_new_deferred(record.clone()).unwrap();
        assert!(matches!(
            store.insert_new_deferred(record),
            Err(PasswordError::DuplicateAccount { .. })
        ));
        store.commit_shards([0usize, 0, 0]).unwrap();
        let syncs = store.durability_stats().unwrap().wal_syncs;
        // An empty barrier issues no fsync at all.
        store.commit_shards(std::iter::empty()).unwrap();
        store.commit_shards([0usize]).unwrap();
        assert_eq!(store.durability_stats().unwrap().wal_syncs, syncs);
        // In-memory stores take the same path as a no-op.
        let plain = ShardedPasswordStore::new(2);
        let r2 = sys.enroll("bob", &clicks(1.0)).unwrap();
        assert_eq!(
            plain.insert_new_deferred(r2).unwrap(),
            shard_index("bob", 2)
        );
        plain.commit_shards([shard_index("bob", 2)]).unwrap();
        assert!(plain.wal_watermark(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_hasher_matches_fresh_salt_absorption() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        let (stored, cached) = store.get_cached("alice").expect("account exists");
        let fresh = SaltedHasher::new(&stored.hash.salt);
        for message in [&b"attempt-a"[..], b"attempt-b", b""] {
            assert_eq!(
                cached.iterated(message, stored.hash.iterations),
                fresh.iterated(message, stored.hash.iterations),
                "cached per-salt state must be bit-identical to a fresh one"
            );
        }
        // Records loaded through `insert` (bulk load / recovery) cache too.
        let reloaded = ShardedPasswordStore::new(2);
        reloaded.insert(stored.clone()).unwrap();
        let (_, cached2) = reloaded.get_cached("alice").expect("inserted");
        assert_eq!(cached2.iterated(b"x", 3), fresh.iterated(b"x", 3));
        assert!(store.get_cached("ghost").is_none());
    }

    #[test]
    fn concurrent_enrollment_across_threads_and_shards() {
        use std::sync::Arc;
        let store = Arc::new(ShardedPasswordStore::new(4));
        let sys = system();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            let sys = sys.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    let name = format!("t{t}-user{i}");
                    store
                        .enroll(&sys, &name, &clicks(t as f64 + i as f64))
                        .unwrap();
                    assert!(store
                        .verify(&sys, &name, &clicks(t as f64 + i as f64))
                        .unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 64);
    }

    #[test]
    fn concurrent_durable_enrolls_with_concurrent_snapshots() {
        use std::sync::Arc;
        let dir = temp_dir("durable-concurrent");
        let store = Arc::new(
            ShardedPasswordStore::open_durable(
                &dir,
                4,
                DurabilityOptions {
                    fsync: FsyncPolicy::Never,
                    ..DurabilityOptions::default()
                },
            )
            .unwrap(),
        );
        let sys = system();
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            let sys = sys.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    store
                        .enroll(&sys, &format!("t{t}-user{i}"), &clicks((t * 8 + i) as f64))
                        .unwrap();
                }
            }));
        }
        // Compaction racing the writers: snapshot everything, repeatedly.
        let snapshotter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..16 {
                    store.snapshot_if_past(0).unwrap();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        snapshotter.join().unwrap();
        drop(store);
        let recovered =
            ShardedPasswordStore::open_durable(&dir, 4, DurabilityOptions::default()).unwrap();
        assert_eq!(recovered.len(), 32, "no enroll lost to a racing snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
