//! Sharded account store: N independently locked partitions keyed by a
//! hash of the account name.
//!
//! The monolithic [`PasswordStore`] holds one
//! `RwLock` over every account, which serializes writers and makes the lock
//! a contention point once a serving layer fans requests out across worker
//! threads.  `ShardedPasswordStore` partitions the account space into `N`
//! small, independently locked shards — the cluster-hash-table shape from
//! the cheap-recovery literature: each shard is a self-contained unit that
//! can be persisted, reloaded and inspected on its own, so a deployment can
//! scale lock concurrency and recover (or migrate) one shard without
//! touching the rest.
//!
//! Routing is by [`shard_index`], an FNV-1a hash of the account name
//! reduced modulo the shard count.  The mapping is an implementation detail
//! of the *in-memory* layout only: the per-shard file format is the same
//! line-oriented format as the monolithic store, and loading routes every
//! record through [`ShardedPasswordStore::insert`], so shard files written
//! under one shard count can be reloaded under any other.

use crate::error::PasswordError;
use crate::store::PasswordStore;
use crate::stored::StoredPassword;
use crate::system::GraphicalPasswordSystem;
use gp_crypto::SaltedHasher;
use gp_geometry::Point;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stable routing function: which of `shards` partitions owns `username`.
///
/// FNV-1a over the account name, reduced modulo the shard count.  Cheap
/// (a few ns), well distributed for short ASCII-ish names, and — unlike a
/// `DefaultHasher` — stable across processes and Rust versions, so shard
/// assignments are reproducible in tests and benches.
pub fn shard_index(username: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "at least one shard");
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in username.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % shards as u64) as usize
}

/// A resident account: the stored record plus its precomputed per-salt
/// hashing state.
///
/// [`SaltedHasher::new`] absorbs the salt's full SHA-256 blocks; caching
/// the result next to the record means a verification never re-absorbs the
/// salt (the midstate benches put that at 2–3× for long salts), and the
/// serving layer's hash jobs clone plain stack data instead of hashing.
#[derive(Debug, Clone)]
struct CachedAccount {
    stored: StoredPassword,
    hasher: SaltedHasher,
}

impl CachedAccount {
    fn new(stored: StoredPassword) -> Self {
        let hasher = SaltedHasher::new(&stored.hash.salt);
        Self { stored, hasher }
    }
}

/// One partition: its own lock, its own accounts, its own counters.
#[derive(Debug, Default)]
struct Shard {
    accounts: RwLock<BTreeMap<String, CachedAccount>>,
    enrolls: AtomicU64,
    verifies: AtomicU64,
    lookups: AtomicU64,
}

/// Point-in-time snapshot of one shard's size and traffic counters.
///
/// Returned by [`ShardedPasswordStore::stats`]; the serving layer exposes
/// these so operators (and the `authload` bench) can see whether accounts
/// and traffic actually spread across partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of the shard this snapshot describes.
    pub shard: usize,
    /// Enrolled accounts currently resident in the shard.
    pub accounts: usize,
    /// Successful enrollments routed to the shard since creation.
    pub enrolls: u64,
    /// Verification attempts routed to the shard since creation.
    pub verifies: u64,
    /// Record lookups (`get`) routed to the shard since creation.
    pub lookups: u64,
}

/// A concurrent account store partitioned into independently locked shards.
///
/// The API mirrors [`PasswordStore`] so call sites can switch between the
/// two; cross-shard read operations (`len`, `usernames`, `records`) take
/// the shard locks one at a time and are therefore *not* a consistent
/// global snapshot under concurrent writes — exactly the trade the sharded
/// design makes.
#[derive(Debug)]
pub struct ShardedPasswordStore {
    shards: Vec<Shard>,
}

impl ShardedPasswordStore {
    /// Create an empty store with `shards` partitions (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Shard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, username: &str) -> &Shard {
        &self.shards[shard_index(username, self.shards.len())]
    }

    /// Total enrolled accounts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.accounts.read().len()).sum()
    }

    /// Whether no shard holds any account.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.accounts.read().is_empty())
    }

    /// Enroll a new account using the given system.  Fails if the account
    /// already exists.  Only the owning shard's lock is taken.
    pub fn enroll(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<(), PasswordError> {
        let stored = system.enroll(username, clicks)?;
        let shard = self.shard_for(username);
        let entry = CachedAccount::new(stored);
        let mut accounts = shard.accounts.write();
        if accounts.contains_key(username) {
            return Err(PasswordError::DuplicateAccount {
                username: username.to_string(),
            });
        }
        accounts.insert(username.to_string(), entry);
        shard.enrolls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Insert a pre-built record only if the account does not exist yet —
    /// the duplicate check and insert happen under one shard-lock
    /// acquisition, so concurrent enrollments of the same name cannot
    /// both succeed.  The serving layer's split-phase enrollment settles
    /// through this (the hash was computed before the lock is taken).
    pub fn insert_new(&self, stored: StoredPassword) -> Result<(), PasswordError> {
        let shard = self.shard_for(&stored.username);
        let entry = CachedAccount::new(stored);
        let mut accounts = shard.accounts.write();
        if accounts.contains_key(&entry.stored.username) {
            return Err(PasswordError::DuplicateAccount {
                username: entry.stored.username.clone(),
            });
        }
        accounts.insert(entry.stored.username.clone(), entry);
        shard.enrolls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Insert or replace a pre-built record (bulk loading, shard recovery).
    pub fn insert(&self, stored: StoredPassword) {
        let shard = self.shard_for(&stored.username);
        let entry = CachedAccount::new(stored);
        shard
            .accounts
            .write()
            .insert(entry.stored.username.clone(), entry);
    }

    /// Fetch a copy of an account's stored record.
    pub fn get(&self, username: &str) -> Option<StoredPassword> {
        let shard = self.shard_for(username);
        shard.lookups.fetch_add(1, Ordering::Relaxed);
        shard
            .accounts
            .read()
            .get(username)
            .map(|entry| entry.stored.clone())
    }

    /// Fetch a copy of an account's stored record together with its cached
    /// per-salt hashing state, so a verify path can skip re-absorbing the
    /// salt entirely (the hasher clone is a plain stack copy).
    pub fn get_cached(&self, username: &str) -> Option<(StoredPassword, SaltedHasher)> {
        let shard = self.shard_for(username);
        shard.lookups.fetch_add(1, Ordering::Relaxed);
        shard
            .accounts
            .read()
            .get(username)
            .map(|entry| (entry.stored.clone(), entry.hasher.clone()))
    }

    /// Remove an account; returns whether it existed.
    pub fn remove(&self, username: &str) -> bool {
        self.shard_for(username)
            .accounts
            .write()
            .remove(username)
            .is_some()
    }

    /// Verify a login attempt for an account (scalar path; the serving
    /// layer's batch verifier uses [`GraphicalPasswordSystem`]'s split-phase
    /// API with records fetched via [`ShardedPasswordStore::get`]).
    pub fn verify(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<bool, PasswordError> {
        let stored = self
            .get(username)
            .ok_or_else(|| PasswordError::UnknownAccount {
                username: username.to_string(),
            })?;
        self.shard_for(username)
            .verifies
            .fetch_add(1, Ordering::Relaxed);
        system.verify(&stored, clicks)
    }

    /// Record a verification routed through the split-phase/batched path,
    /// so shard traffic counters stay meaningful for the serving layer.
    pub fn note_verified(&self, username: &str) {
        self.shard_for(username)
            .verifies
            .fetch_add(1, Ordering::Relaxed);
    }

    /// All account names across shards, sorted.
    pub fn usernames(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| s.accounts.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// All stored records across shards, sorted by account name.
    pub fn records(&self) -> Vec<StoredPassword> {
        let mut records: Vec<StoredPassword> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.accounts
                    .read()
                    .values()
                    .map(|entry| entry.stored.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        records.sort_by(|a, b| a.username.cmp(&b.username));
        records
    }

    /// Per-shard size and traffic snapshot.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                accounts: s.accounts.read().len(),
                enrolls: s.enrolls.load(Ordering::Relaxed),
                verifies: s.verifies.load(Ordering::Relaxed),
                lookups: s.lookups.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Serialize one shard in the line-oriented password-file format (the
    /// same format the monolithic store writes, so shard files are also
    /// valid whole-store files).
    pub fn shard_file_contents(&self, shard: usize) -> String {
        let mut out = format!(
            "# gp-passwords store v1 (shard {shard}/{})\n",
            self.shards.len()
        );
        for entry in self.shards[shard].accounts.read().values() {
            out.push_str(&entry.stored.to_record());
            out.push('\n');
        }
        out
    }

    /// Persist every shard as `shard-NNN.pwd` under `dir` (created if
    /// absent).  Each shard is written independently — a crash between two
    /// writes loses at most the shards not yet flushed, and recovery can
    /// reload the intact ones.
    pub fn save_to_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for shard in 0..self.shards.len() {
            std::fs::write(
                dir.join(format!("shard-{shard:03}.pwd")),
                self.shard_file_contents(shard),
            )?;
        }
        Ok(())
    }

    /// Load every `shard-NNN.pwd` file under `dir` into a store with
    /// `shards` partitions.  Records are re-routed by account hash, so the
    /// on-disk shard count need not match `shards`.
    pub fn load_from_dir(dir: &Path, shards: usize) -> Result<Self, PasswordError> {
        let store = Self::new(shards);
        let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| PasswordError::CorruptRecord {
                reason: format!("read shard dir {}: {e}", dir.display()),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".pwd"))
            })
            .collect();
        entries.sort();
        for path in entries {
            let contents =
                std::fs::read_to_string(&path).map_err(|e| PasswordError::CorruptRecord {
                    reason: format!("read {}: {e}", path.display()),
                })?;
            // Reuse the monolithic parser (comments, line numbers) and
            // re-route its records through the hash.
            let parsed = PasswordStore::from_file_contents(&contents).map_err(|e| {
                PasswordError::CorruptRecord {
                    reason: format!("{}: {e}", path.display()),
                }
            })?;
            for record in parsed.records() {
                store.insert(record);
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscretizationConfig;
    use crate::policy::PasswordPolicy;

    fn system() -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            3,
        )
    }

    fn clicks(seed: f64) -> Vec<Point> {
        (0..5)
            .map(|i| Point::new(30.0 + seed + 70.0 * i as f64, 20.0 + seed + 55.0 * i as f64))
            .collect()
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7, 16] {
            for name in ["alice", "bob", "", "ユーザー", "user-12345"] {
                let idx = shard_index(name, shards);
                assert!(idx < shards);
                assert_eq!(idx, shard_index(name, shards), "deterministic");
            }
        }
        // Known-vector stability: the persistence layout documentation
        // depends on this mapping not drifting silently.
        assert_eq!(shard_index("alice", 4), shard_index("alice", 4));
        assert_ne!(
            (0..64).map(|i| shard_index(&format!("user{i}"), 4)).max(),
            Some(0),
            "64 users must not all land in shard 0"
        );
    }

    #[test]
    fn enroll_get_verify_remove_across_shards() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        assert!(store.is_empty());
        for i in 0..16 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        assert_eq!(store.len(), 16);
        assert_eq!(store.usernames().len(), 16);
        assert!(store.verify(&sys, "user3", &clicks(3.0)).unwrap());
        assert!(!store.verify(&sys, "user3", &clicks(50.0)).unwrap());
        assert!(store.remove("user3"));
        assert!(!store.remove("user3"));
        assert!(store.get("user3").is_none());
        assert_eq!(store.len(), 15);
    }

    #[test]
    fn accounts_spread_over_multiple_shards() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        for i in 0..64 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.len(), 4);
        let populated = stats.iter().filter(|s| s.accounts > 0).count();
        assert!(populated >= 3, "64 accounts should hit ≥3 of 4 shards");
        assert_eq!(stats.iter().map(|s| s.accounts).sum::<usize>(), 64);
        assert_eq!(stats.iter().map(|s| s.enrolls).sum::<u64>(), 64);
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let store = ShardedPasswordStore::new(2);
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        assert!(matches!(
            store.enroll(&sys, "alice", &clicks(1.0)),
            Err(PasswordError::DuplicateAccount { .. })
        ));
    }

    #[test]
    fn unknown_account_is_an_error_not_a_failed_login() {
        let store = ShardedPasswordStore::new(2);
        assert!(matches!(
            store.verify(&system(), "ghost", &clicks(0.0)),
            Err(PasswordError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let store = ShardedPasswordStore::new(0);
        assert_eq!(store.shard_count(), 1);
        store.enroll(&system(), "alice", &clicks(0.0)).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn per_shard_files_round_trip_across_shard_counts() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        for i in 0..12 {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap();
        }
        let dir = std::env::temp_dir().join(format!("gp-shard-test-{}", std::process::id()));
        store.save_to_dir(&dir).unwrap();

        // Reload under a *different* shard count: records re-route by hash.
        let reloaded = ShardedPasswordStore::load_from_dir(&dir, 7).unwrap();
        assert_eq!(reloaded.shard_count(), 7);
        assert_eq!(reloaded.len(), 12);
        for i in 0..12 {
            assert!(reloaded
                .verify(&sys, &format!("user{i}"), &clicks(i as f64))
                .unwrap());
        }

        // A single shard file is also a valid monolithic store file.
        let single = PasswordStore::from_file_contents(&store.shard_file_contents(0)).unwrap();
        assert_eq!(single.len(), store.stats()[0].accounts);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_hasher_matches_fresh_salt_absorption() {
        let store = ShardedPasswordStore::new(4);
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        let (stored, cached) = store.get_cached("alice").expect("account exists");
        let fresh = SaltedHasher::new(&stored.hash.salt);
        for message in [&b"attempt-a"[..], b"attempt-b", b""] {
            assert_eq!(
                cached.iterated(message, stored.hash.iterations),
                fresh.iterated(message, stored.hash.iterations),
                "cached per-salt state must be bit-identical to a fresh one"
            );
        }
        // Records loaded through `insert` (bulk load / recovery) cache too.
        let reloaded = ShardedPasswordStore::new(2);
        reloaded.insert(stored.clone());
        let (_, cached2) = reloaded.get_cached("alice").expect("inserted");
        assert_eq!(cached2.iterated(b"x", 3), fresh.iterated(b"x", 3));
        assert!(store.get_cached("ghost").is_none());
    }

    #[test]
    fn concurrent_enrollment_across_threads_and_shards() {
        use std::sync::Arc;
        let store = Arc::new(ShardedPasswordStore::new(4));
        let sys = system();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            let sys = sys.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    let name = format!("t{t}-user{i}");
                    store
                        .enroll(&sys, &name, &clicks(t as f64 + i as f64))
                        .unwrap();
                    assert!(store
                        .verify(&sys, &name, &clicks(t as f64 + i as f64))
                        .unwrap());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 64);
    }
}
