//! A concurrent multi-account password store with a plain-text file format.
//!
//! The store is what the networked authentication server holds: a map from
//! account name to [`StoredPassword`].  It is deliberately *not* aware of
//! original click coordinates — only the clear grid identifiers and hashes —
//! so compromising the store yields exactly the information the paper's
//! offline-attack analysis (§5.1) assumes: grid identifiers in the clear
//! plus hashed passwords.

use crate::error::PasswordError;
use crate::stored::StoredPassword;
use crate::system::GraphicalPasswordSystem;
use gp_geometry::Point;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Concurrent account → stored-password map.
#[derive(Debug, Default)]
pub struct PasswordStore {
    accounts: RwLock<BTreeMap<String, StoredPassword>>,
}

impl PasswordStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of enrolled accounts.
    pub fn len(&self) -> usize {
        self.accounts.read().len()
    }

    /// Whether the store has no accounts.
    pub fn is_empty(&self) -> bool {
        self.accounts.read().is_empty()
    }

    /// Enroll a new account using the given system.  Fails if the account
    /// already exists.
    pub fn enroll(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<(), PasswordError> {
        let stored = system.enroll(username, clicks)?;
        let mut accounts = self.accounts.write();
        if accounts.contains_key(username) {
            return Err(PasswordError::DuplicateAccount {
                username: username.to_string(),
            });
        }
        accounts.insert(username.to_string(), stored);
        Ok(())
    }

    /// Insert or replace a pre-built record (used when loading files and in
    /// attack simulations that enroll synthetic users in bulk).
    pub fn insert(&self, stored: StoredPassword) {
        self.accounts
            .write()
            .insert(stored.username.clone(), stored);
    }

    /// Fetch a copy of an account's stored record.
    pub fn get(&self, username: &str) -> Option<StoredPassword> {
        self.accounts.read().get(username).cloned()
    }

    /// Remove an account; returns whether it existed.
    pub fn remove(&self, username: &str) -> bool {
        self.accounts.write().remove(username).is_some()
    }

    /// Verify a login attempt for an account.
    pub fn verify(
        &self,
        system: &GraphicalPasswordSystem,
        username: &str,
        clicks: &[Point],
    ) -> Result<bool, PasswordError> {
        let stored = self
            .get(username)
            .ok_or_else(|| PasswordError::UnknownAccount {
                username: username.to_string(),
            })?;
        system.verify(&stored, clicks)
    }

    /// All account names, sorted.
    pub fn usernames(&self) -> Vec<String> {
        self.accounts.read().keys().cloned().collect()
    }

    /// All stored records, sorted by account name.
    pub fn records(&self) -> Vec<StoredPassword> {
        self.accounts.read().values().cloned().collect()
    }

    /// Serialize the whole store to the line-oriented password-file format.
    pub fn to_file_contents(&self) -> String {
        let mut out = String::from("# gp-passwords store v1\n");
        for record in self.accounts.read().values() {
            out.push_str(&record.to_record());
            out.push('\n');
        }
        out
    }

    /// Load a store from the password-file format.  Lines starting with `#`
    /// and blank lines are ignored.
    pub fn from_file_contents(contents: &str) -> Result<Self, PasswordError> {
        let store = Self::new();
        for (line_no, line) in contents.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let record =
                StoredPassword::from_record(line).map_err(|e| PasswordError::CorruptRecord {
                    reason: format!("line {}: {e}", line_no + 1),
                })?;
            store.insert(record);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscretizationConfig;
    use crate::policy::PasswordPolicy;
    fn system() -> GraphicalPasswordSystem {
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            3,
        )
    }

    fn clicks(seed: f64) -> Vec<Point> {
        (0..5)
            .map(|i| Point::new(30.0 + seed + 70.0 * i as f64, 20.0 + seed + 55.0 * i as f64))
            .collect()
    }

    #[test]
    fn enroll_get_verify_remove() {
        let store = PasswordStore::new();
        let sys = system();
        assert!(store.is_empty());
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        store.enroll(&sys, "bob", &clicks(3.0)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(
            store.usernames(),
            vec!["alice".to_string(), "bob".to_string()]
        );

        assert!(store.verify(&sys, "alice", &clicks(0.0)).unwrap());
        assert!(!store.verify(&sys, "alice", &clicks(50.0)).unwrap());
        assert!(store.verify(&sys, "bob", &clicks(3.0)).unwrap());

        assert!(store.remove("alice"));
        assert!(!store.remove("alice"));
        assert!(store.get("alice").is_none());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let store = PasswordStore::new();
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        assert!(matches!(
            store.enroll(&sys, "alice", &clicks(1.0)),
            Err(PasswordError::DuplicateAccount { .. })
        ));
    }

    #[test]
    fn unknown_account_is_an_error_not_a_failed_login() {
        let store = PasswordStore::new();
        let sys = system();
        assert!(matches!(
            store.verify(&sys, "ghost", &clicks(0.0)),
            Err(PasswordError::UnknownAccount { .. })
        ));
    }

    #[test]
    fn file_round_trip_preserves_verification() {
        let store = PasswordStore::new();
        let sys = system();
        store.enroll(&sys, "alice", &clicks(0.0)).unwrap();
        store.enroll(&sys, "bob", &clicks(7.0)).unwrap();
        let contents = store.to_file_contents();
        assert!(contents.starts_with("# gp-passwords store v1\n"));

        let reloaded = PasswordStore::from_file_contents(&contents).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.verify(&sys, "alice", &clicks(0.0)).unwrap());
        assert!(reloaded.verify(&sys, "bob", &clicks(7.0)).unwrap());
        assert!(!reloaded.verify(&sys, "bob", &clicks(0.0)).unwrap());
    }

    #[test]
    fn file_parser_skips_comments_and_reports_line_numbers() {
        let store = PasswordStore::from_file_contents("# comment\n\n# another\n").unwrap();
        assert!(store.is_empty());
        let err = PasswordStore::from_file_contents("# ok\ngarbage line\n").unwrap_err();
        match err {
            PasswordError::CorruptRecord { reason } => assert!(reason.contains("line 2")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn concurrent_access_from_multiple_threads() {
        use std::sync::Arc;
        let store = Arc::new(PasswordStore::new());
        let sys = system();
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            let sys = sys.clone();
            handles.push(std::thread::spawn(move || {
                let name = format!("user{t}");
                store.enroll(&sys, &name, &clicks(t as f64)).unwrap();
                assert!(store.verify(&sys, &name, &clicks(t as f64)).unwrap());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8);
    }

    #[test]
    fn compromised_store_reveals_only_clear_identifiers_and_hashes() {
        // Sanity check of the threat model: the serialized store never
        // contains raw coordinates.
        let store = PasswordStore::new();
        let sys = system();
        let original = clicks(0.0);
        store.enroll(&sys, "alice", &original).unwrap();
        let contents = store.to_file_contents();
        let record_line = contents
            .lines()
            .find(|l| !l.starts_with('#'))
            .expect("one record line");
        let fields: Vec<&str> = record_line.split('\t').collect();
        assert_eq!(fields.len(), 6, "record must have exactly 6 fields");
        // The only per-click data present is the clear grid identifiers
        // (field 4) and the single hash (field 5); there is no field that
        // could hold the 10 raw coordinates of the 5 original clicks.
        assert_eq!(fields[4].split(';').count(), original.len());
        assert!(
            fields[5].starts_with("3$"),
            "hash field with iteration count"
        );
    }
}
