//! The stored form of a graphical password: clear grid identifiers plus one
//! salted, iterated hash.
//!
//! Mirroring §2.2 and §3.2 of the paper, the password file keeps, per
//! account:
//!
//! * the per-click *clear* grid identifiers (Robust: grid index; Centered:
//!   the `(dx, dy)` offsets) — needed to discretize future login attempts
//!   consistently;
//! * a single hash over the concatenation of every click's identifier and
//!   grid-square index, salted with the user identifier and iterated —
//!   matching `h(dx₁, dy₁, ix₁, iy₁, …, dx₅, dy₅, ix₅, iy₅)`;
//! * the configuration needed to interpret the above (scheme, tolerance,
//!   image, click count).

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::policy::PasswordPolicy;
use gp_crypto::{hex, PasswordHash};
use gp_discretization::{DiscretizedClick, GridId};
use gp_geometry::ImageDims;
use serde::{Deserialize, Serialize};

/// The clear per-click data stored in the password file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClickRecord {
    /// The clear grid identifier for this click.
    pub grid_id: GridId,
}

/// A complete stored graphical password record for one account.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPassword {
    /// Account name (also used as the hash salt, per §3.2).
    pub username: String,
    /// Discretization configuration the password was enrolled under.
    pub config: DiscretizationConfig,
    /// Click-count / image policy the password was enrolled under.
    pub policy: PasswordPolicy,
    /// Clear grid identifiers, one per click, in click order.
    pub clicks: Vec<ClickRecord>,
    /// Salted, iterated hash over all discretized clicks.
    pub hash: PasswordHash,
}

impl StoredPassword {
    /// Canonical byte encoding of a full sequence of discretized clicks —
    /// the pre-image of the stored hash.
    ///
    /// The length prefix and per-click framing make the encoding injective:
    /// two different click sequences can never serialize to the same bytes.
    pub fn encode_clicks(discretized: &[DiscretizedClick]) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            4 + discretized
                .iter()
                .map(|c| 4 + c.encoded_len())
                .sum::<usize>(),
        );
        Self::encode_clicks_into(discretized, &mut out);
        out
    }

    /// [`StoredPassword::encode_clicks`] into a caller-provided buffer.
    ///
    /// Clears and refills `out`, so a guess loop that reuses one buffer
    /// performs no allocation after the first call — the per-guess wire
    /// encoding used by the batched offline attacks and the scratch-based
    /// verify path.
    pub fn encode_clicks_into(discretized: &[DiscretizedClick], out: &mut Vec<u8>) {
        out.clear();
        out.extend_from_slice(&(discretized.len() as u32).to_be_bytes());
        for click in discretized {
            out.extend_from_slice(&(click.encoded_len() as u32).to_be_bytes());
            click.write_into(out);
        }
    }

    /// Number of click-points in the stored password.
    pub fn click_count(&self) -> usize {
        self.clicks.len()
    }

    /// Serialize to a single text line for the password file.
    ///
    /// Format (tab-separated):
    /// `username  scheme-header  clicks  WxH  grid-id-hex;…  hash-record`
    pub fn to_record(&self) -> String {
        let grid_ids: Vec<String> = self
            .clicks
            .iter()
            .map(|c| hex::encode(&c.grid_id.to_bytes()))
            .collect();
        format!(
            "{}\t{}\t{}\t{}x{}\t{}\t{}",
            self.username,
            self.config.to_header(),
            self.policy.clicks,
            self.policy.image.width,
            self.policy.image.height,
            grid_ids.join(";"),
            self.hash.to_record()
        )
    }

    /// Parse a record produced by [`to_record`](Self::to_record).
    pub fn from_record(line: &str) -> Result<Self, PasswordError> {
        let corrupt = |reason: &str| PasswordError::CorruptRecord {
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 6 {
            return Err(corrupt(&format!("expected 6 fields, got {}", fields.len())));
        }
        let username = fields[0].to_string();
        if username.is_empty() {
            return Err(corrupt("empty username"));
        }
        let config = DiscretizationConfig::from_header(fields[1])
            .ok_or_else(|| corrupt("unrecognised scheme header"))?;
        let clicks: usize = fields[2].parse().map_err(|_| corrupt("bad click count"))?;
        let (w, h) = fields[3]
            .split_once('x')
            .ok_or_else(|| corrupt("bad image dimensions"))?;
        let width: u32 = w.parse().map_err(|_| corrupt("bad image width"))?;
        let height: u32 = h.parse().map_err(|_| corrupt("bad image height"))?;
        if width == 0 || height == 0 || clicks == 0 {
            return Err(corrupt("zero image dimension or click count"));
        }
        let policy = PasswordPolicy::new(ImageDims::new(width, height), clicks);
        let mut click_records = Vec::with_capacity(clicks);
        for part in fields[4].split(';') {
            let bytes = hex::decode(part).map_err(|_| corrupt("bad grid identifier hex"))?;
            let grid_id =
                GridId::from_bytes(&bytes).map_err(|e| corrupt(&format!("bad grid id: {e}")))?;
            click_records.push(ClickRecord { grid_id });
        }
        if click_records.len() != clicks {
            return Err(corrupt(&format!(
                "click count {} does not match {} stored grid identifiers",
                clicks,
                click_records.len()
            )));
        }
        let hash =
            PasswordHash::from_record(fields[5]).ok_or_else(|| corrupt("bad hash record"))?;
        Ok(Self {
            username,
            config,
            policy,
            clicks: click_records,
            hash,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_crypto::PasswordHasher;
    use gp_geometry::GridCell;

    fn sample() -> StoredPassword {
        let hasher = PasswordHasher::new("passpoints", 10);
        StoredPassword {
            username: "alice".into(),
            config: DiscretizationConfig::centered(9),
            policy: PasswordPolicy::study_default(),
            clicks: vec![
                ClickRecord {
                    grid_id: GridId::Centered { dx: 7.5, dy: 2.0 },
                },
                ClickRecord {
                    grid_id: GridId::Centered { dx: 0.5, dy: 18.5 },
                },
                ClickRecord {
                    grid_id: GridId::Centered { dx: 1.0, dy: 1.0 },
                },
                ClickRecord {
                    grid_id: GridId::Centered { dx: 2.0, dy: 3.0 },
                },
                ClickRecord {
                    grid_id: GridId::Centered { dx: 4.0, dy: 5.0 },
                },
            ],
            hash: hasher.hash(b"alice", b"pre-image"),
        }
    }

    #[test]
    fn record_round_trip() {
        let stored = sample();
        let line = stored.to_record();
        let parsed = StoredPassword::from_record(&line).expect("parse");
        assert_eq!(parsed, stored);
    }

    #[test]
    fn record_round_trip_robust() {
        let mut stored = sample();
        stored.config = DiscretizationConfig::robust(6.0);
        stored.clicks = (0..5)
            .map(|i| ClickRecord {
                grid_id: GridId::Robust { grid_index: i % 3 },
            })
            .collect();
        let parsed = StoredPassword::from_record(&stored.to_record()).expect("parse");
        assert_eq!(parsed, stored);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(StoredPassword::from_record("").is_err());
        assert!(StoredPassword::from_record("onlyonefield").is_err());
        let stored = sample();
        let line = stored.to_record();
        // Corrupt each field in turn.
        let fields: Vec<&str> = line.split('\t').collect();
        for i in 1..fields.len() {
            let mut bad = fields.clone();
            bad[i] = "zzz";
            assert!(
                StoredPassword::from_record(&bad.join("\t")).is_err(),
                "field {i} should fail to parse"
            );
        }
    }

    #[test]
    fn parse_rejects_click_count_mismatch() {
        let stored = sample();
        let mut line = stored.to_record();
        // Claim 4 clicks while 5 grid ids are present.
        line = line.replacen("\t5\t", "\t4\t", 1);
        assert!(StoredPassword::from_record(&line).is_err());
    }

    #[test]
    fn encode_clicks_is_injective_in_count_and_content() {
        let a = DiscretizedClick {
            grid_id: GridId::Robust { grid_index: 0 },
            cell: GridCell::new(1, 2),
        };
        let b = DiscretizedClick {
            grid_id: GridId::Robust { grid_index: 1 },
            cell: GridCell::new(1, 2),
        };
        assert_ne!(
            StoredPassword::encode_clicks(&[a, b]),
            StoredPassword::encode_clicks(&[b, a])
        );
        assert_ne!(
            StoredPassword::encode_clicks(&[a]),
            StoredPassword::encode_clicks(&[a, a])
        );
        assert_ne!(
            StoredPassword::encode_clicks(&[]),
            StoredPassword::encode_clicks(&[a])
        );
    }
}
