//! Enrollment and verification: the core graphical password system.

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::policy::PasswordPolicy;
use crate::stored::{ClickRecord, StoredPassword};
use gp_crypto::{ct_eq, PasswordHasher, SaltedHasher};
use gp_discretization::{DiscretizationScheme, DiscretizedClick};
use gp_geometry::{ImageDims, Point};

/// Reusable workspace for the allocation-free verify path.
///
/// [`GraphicalPasswordSystem::verify`] needs, per attempt: the discretized
/// login clicks, the encoded hash pre-image, the built discretization
/// scheme and the per-user salted hash state.  A `VerifyScratch` owns all
/// four and caches the last two keyed by configuration/salt, so a loop
/// verifying many attempts against one stored record (a login server under
/// load, or the brute-force attacks in `gp-attacks`) performs **zero heap
/// allocations per guess** after warm-up.
#[derive(Default)]
pub struct VerifyScratch {
    discretized: Vec<DiscretizedClick>,
    pre_image: Vec<u8>,
    scheme: Option<(
        DiscretizationConfig,
        Box<dyn DiscretizationScheme + Send + Sync>,
    )>,
    salted: Option<(Vec<u8>, SaltedHasher)>,
}

impl core::fmt::Debug for VerifyScratch {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // The pre-image is a candidate password: never print it.
        f.debug_struct("VerifyScratch").finish_non_exhaustive()
    }
}

impl VerifyScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build (or keep) the cached scheme for `config`.
    fn ensure_scheme(&mut self, config: &DiscretizationConfig) {
        let hit = matches!(&self.scheme, Some((cached, _)) if cached == config);
        if !hit {
            self.scheme = Some((*config, config.build()));
        }
    }

    /// Build (or keep) the cached salted hash state for `salt`.
    fn ensure_salted(&mut self, salt: &[u8]) {
        let hit = matches!(&self.salted, Some((cached, _)) if cached == salt);
        if !hit {
            self.salted = Some((salt.to_vec(), SaltedHasher::new(salt)));
        }
    }
}

/// A click-based graphical password system: a password policy, a
/// discretization configuration and a password hasher.
///
/// This is the generic machinery; [`crate::schemes`] wraps it into the
/// concrete schemes the literature names (PassPoints, Cued Click-Points,
/// Persuasive Cued Click-Points).
#[derive(Debug, Clone)]
pub struct GraphicalPasswordSystem {
    policy: PasswordPolicy,
    config: DiscretizationConfig,
    hasher: PasswordHasher,
}

impl GraphicalPasswordSystem {
    /// Domain-separation label mixed into every password hash.
    pub const HASH_DOMAIN: &'static str = "gp-passwords/v1";

    /// Create a system with an explicit policy, discretization configuration
    /// and hash iteration count.
    pub fn new(policy: PasswordPolicy, config: DiscretizationConfig, iterations: u32) -> Self {
        Self {
            policy,
            config,
            hasher: PasswordHasher::new(Self::HASH_DOMAIN, iterations),
        }
    }

    /// A PassPoints-style system: five ordered clicks on a single image,
    /// hashed with the paper's example iteration count (1000).
    pub fn passpoints(image: ImageDims, config: DiscretizationConfig) -> Self {
        Self::new(
            PasswordPolicy::new(image, 5),
            config,
            PasswordHasher::DEFAULT_ITERATIONS,
        )
    }

    /// A system with a single click per password (used by Cued Click-Points,
    /// which hashes one click per image).
    pub fn single_click(image: ImageDims, config: DiscretizationConfig, iterations: u32) -> Self {
        Self::new(PasswordPolicy::new(image, 1), config, iterations)
    }

    /// The password policy.
    pub fn policy(&self) -> &PasswordPolicy {
        &self.policy
    }

    /// The discretization configuration.
    pub fn config(&self) -> &DiscretizationConfig {
        &self.config
    }

    /// The hash iteration count.
    pub fn iterations(&self) -> u32 {
        self.hasher.iterations
    }

    /// The password hasher (domain + iteration policy).  Exposed so attack
    /// simulations can precompute per-target salted state and batch their
    /// guesses through the multi-lane pipeline.
    pub fn hasher(&self) -> &PasswordHasher {
        &self.hasher
    }

    /// Discretize a click sequence at enrollment time.
    fn discretize_enrollment(&self, clicks: &[Point]) -> Vec<DiscretizedClick> {
        let scheme = self.config.build();
        clicks.iter().map(|p| scheme.enroll(p)).collect()
    }

    /// Enroll a new password for `username` from its original click-points.
    pub fn enroll(
        &self,
        username: &str,
        clicks: &[Point],
    ) -> Result<StoredPassword, PasswordError> {
        let (record, pre_image) = self.prepare_enroll(username, clicks)?;
        let salted = SaltedHasher::new(&record.hash.salt);
        let digest = salted.iterated(&pre_image, record.hash.iterations);
        Ok(Self::finish_enroll(record, digest))
    }

    /// Phase 1 of a split enrollment: validate the policy, discretize the
    /// clicks and build the full stored record *except* its digest (left
    /// zeroed), returning the record together with the hash pre-image.
    ///
    /// The serving layer uses this to keep the expensive iterated hash off
    /// its event-loop thread: the pre-image is hashed under
    /// `record.hash.salt` / `record.hash.iterations` wherever convenient
    /// (e.g. batched with concurrent logins) and the digest installed with
    /// [`GraphicalPasswordSystem::finish_enroll`].
    pub fn prepare_enroll(
        &self,
        username: &str,
        clicks: &[Point],
    ) -> Result<(StoredPassword, Vec<u8>), PasswordError> {
        self.policy.validate_enrollment(clicks)?;
        let discretized = self.discretize_enrollment(clicks);
        let pre_image = StoredPassword::encode_clicks(&discretized);
        let record = StoredPassword {
            username: username.to_string(),
            config: self.config,
            policy: self.policy,
            clicks: discretized
                .iter()
                .map(|d| ClickRecord { grid_id: d.grid_id })
                .collect(),
            hash: gp_crypto::PasswordHash {
                salt: self.hasher.salt_for(username.as_bytes()),
                iterations: self.hasher.iterations,
                digest: gp_crypto::Digest::default(),
            },
        };
        Ok((record, pre_image))
    }

    /// Phase 2 of a split enrollment: install the digest computed from the
    /// [`GraphicalPasswordSystem::prepare_enroll`] pre-image.
    ///
    /// The finished record is what a durable deployment logs: the serving
    /// layer passes it to
    /// [`ShardedPasswordStore::insert_new`](crate::shard::ShardedPasswordStore::insert_new),
    /// which appends it to the owning shard's write-ahead log *before*
    /// the enrollment is acknowledged on the wire — so an acked account
    /// survives a crash at any instant.
    pub fn finish_enroll(mut record: StoredPassword, digest: gp_crypto::Digest) -> StoredPassword {
        record.hash.digest = digest;
        record
    }

    /// Recompute the hash pre-image for a login attempt against a stored
    /// record, using only the record's clear data — exactly what a server
    /// that never saw the original coordinates can do.
    pub fn login_pre_image(
        &self,
        stored: &StoredPassword,
        clicks: &[Point],
    ) -> Result<Vec<u8>, PasswordError> {
        if clicks.len() != stored.clicks.len() {
            return Err(PasswordError::WrongClickCount {
                expected: stored.clicks.len(),
                got: clicks.len(),
            });
        }
        let scheme = stored.config.build();
        let mut discretized = Vec::with_capacity(clicks.len());
        for (record, login) in stored.clicks.iter().zip(clicks.iter()) {
            let cell = scheme.try_locate(&record.grid_id, login)?;
            discretized.push(DiscretizedClick {
                grid_id: record.grid_id,
                cell,
            });
        }
        Ok(StoredPassword::encode_clicks(&discretized))
    }

    /// Verify a login attempt against a stored record.
    ///
    /// Returns `Ok(true)` / `Ok(false)` for well-formed attempts and an
    /// error only for structurally invalid input (wrong click count, clicks
    /// outside the image, corrupt record).
    ///
    /// One-shot wrapper over [`GraphicalPasswordSystem::verify_with_scratch`];
    /// callers verifying in a loop should hold a [`VerifyScratch`] and call
    /// that directly to stay allocation-free.
    pub fn verify(&self, stored: &StoredPassword, clicks: &[Point]) -> Result<bool, PasswordError> {
        self.verify_with_scratch(stored, clicks, &mut VerifyScratch::new())
    }

    /// [`GraphicalPasswordSystem::verify`] using caller-owned scratch
    /// space: after the first call for a given record, subsequent attempts
    /// allocate nothing (discretization buffer, pre-image buffer, built
    /// scheme and salted hash state are all reused).
    pub fn verify_with_scratch(
        &self,
        stored: &StoredPassword,
        clicks: &[Point],
        scratch: &mut VerifyScratch,
    ) -> Result<bool, PasswordError> {
        self.discretize_attempt(stored, clicks, scratch)?;
        if !self.provenance_matches(stored) {
            return Ok(false);
        }
        scratch.ensure_salted(&stored.hash.salt);
        let salted = &scratch.salted.as_ref().expect("just ensured").1;
        let candidate = salted.iterated(&scratch.pre_image, stored.hash.iterations);
        Ok(self.finish_verify(stored, &candidate))
    }

    /// Discretize a login attempt into `scratch` and encode the hash
    /// pre-image into `scratch.pre_image` (no hashing, no allocation after
    /// warm-up).
    ///
    /// This runs before any salt/iteration provenance checks so that
    /// structurally corrupt records surface as `Err` exactly as the
    /// original `login_pre_image`-based path reported them, even when the
    /// record also fails provenance.
    fn discretize_attempt(
        &self,
        stored: &StoredPassword,
        clicks: &[Point],
        scratch: &mut VerifyScratch,
    ) -> Result<(), PasswordError> {
        stored.policy.validate_login(clicks)?;
        if clicks.len() != stored.clicks.len() {
            return Err(PasswordError::WrongClickCount {
                expected: stored.clicks.len(),
                got: clicks.len(),
            });
        }
        // Field accesses are kept direct so the cached-scheme borrow and
        // the buffer pushes split cleanly.
        scratch.ensure_scheme(&stored.config);
        scratch.discretized.clear();
        let scheme = scratch.scheme.as_ref().expect("just ensured").1.as_ref();
        for (record, login) in stored.clicks.iter().zip(clicks.iter()) {
            let cell = scheme.try_locate(&record.grid_id, login)?;
            scratch.discretized.push(DiscretizedClick {
                grid_id: record.grid_id,
                cell,
            });
        }
        StoredPassword::encode_clicks_into(&scratch.discretized, &mut scratch.pre_image);
        Ok(())
    }

    /// Whether `stored` was hashed with this system's parameters: same
    /// iteration count and a salt that is exactly `domain || 0x1f || user`.
    /// Checked without materializing the expected salt.  A mismatch means
    /// the record can never verify under this system (`Ok(false)` from the
    /// verify paths), but is not a structural error.
    pub fn provenance_matches(&self, stored: &StoredPassword) -> bool {
        stored.hash.iterations == self.hasher.iterations
            && salt_matches(&self.hasher, stored.username.as_bytes(), &stored.hash.salt)
    }

    /// Phase 1 of a split verification: validate and discretize the
    /// attempt, returning the owned hash pre-image — or `None` when the
    /// record's salt/iteration provenance cannot match this system (the
    /// attempt is a definite non-match, no hashing needed).
    ///
    /// The serving layer uses this to separate the cheap per-attempt work
    /// (discretization, encoding, provenance) from the expensive iterated
    /// hash, so many concurrent attempts can be coalesced into one
    /// multi-lane hashing call and then settled with
    /// [`GraphicalPasswordSystem::finish_verify`].  Structural errors
    /// (wrong click count, clicks outside the image, corrupt record) are
    /// reported exactly as [`GraphicalPasswordSystem::verify`] reports
    /// them.
    pub fn prepare_verify(
        &self,
        stored: &StoredPassword,
        clicks: &[Point],
        scratch: &mut VerifyScratch,
    ) -> Result<Option<Vec<u8>>, PasswordError> {
        self.discretize_attempt(stored, clicks, scratch)?;
        if !self.provenance_matches(stored) {
            return Ok(None);
        }
        Ok(Some(scratch.pre_image.clone()))
    }

    /// Phase 2 of a split verification: compare a candidate digest (the
    /// iterated hash of a [`GraphicalPasswordSystem::prepare_verify`]
    /// pre-image under the record's salt) against the stored digest in
    /// constant time.
    pub fn finish_verify(&self, stored: &StoredPassword, candidate: &gp_crypto::Digest) -> bool {
        ct_eq(candidate, &stored.hash.digest)
    }
}

/// Whether `salt` is exactly `domain || 0x1f || user_id`, checked without
/// materializing the expected salt.
fn salt_matches(hasher: &PasswordHasher, user_id: &[u8], salt: &[u8]) -> bool {
    let domain = hasher.domain.as_bytes();
    salt.len() == domain.len() + 1 + user_id.len()
        && salt[..domain.len()] == *domain
        && salt[domain.len()] == 0x1f
        && salt[domain.len() + 1..] == *user_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_discretization::GridId;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(50.0, 60.0),
            Point::new(120.0, 200.0),
            Point::new(301.0, 75.0),
            Point::new(400.0, 310.0),
            Point::new(222.0, 111.0),
        ]
    }

    fn system_centered() -> GraphicalPasswordSystem {
        // Small iteration count keeps tests fast; the hashing math is the
        // same as with 1000 iterations.
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(9),
            5,
        )
    }

    #[test]
    fn enroll_then_exact_login_succeeds() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
    }

    #[test]
    fn login_within_tolerance_succeeds() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(9.0, -9.0)).collect();
        assert!(system.verify(&stored, &wobbly).unwrap());
    }

    #[test]
    fn login_outside_tolerance_fails() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let off: Vec<Point> = clicks().iter().map(|p| p.offset(10.0, 0.0)).collect();
        assert!(!system.verify(&stored, &off).unwrap());
    }

    #[test]
    fn single_wrong_click_fails_whole_password() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut attempt = clicks();
        attempt[4] = Point::new(10.0, 10.0);
        assert!(!system.verify(&stored, &attempt).unwrap());
    }

    #[test]
    fn click_order_matters() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut swapped = clicks();
        swapped.swap(0, 1);
        assert!(!system.verify(&stored, &swapped).unwrap());
    }

    #[test]
    fn robust_configuration_round_trips() {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::robust(6.0),
            5,
        );
        let stored = system.enroll("bob", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
        // All stored identifiers are robust grid indices.
        for c in &stored.clicks {
            assert!(matches!(c.grid_id, GridId::Robust { .. }));
        }
        // Within the guaranteed tolerance r = 6.
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(5.0, 5.0)).collect();
        assert!(system.verify(&stored, &wobbly).unwrap());
    }

    #[test]
    fn different_users_get_different_hashes_for_same_clicks() {
        let system = system_centered();
        let a = system.enroll("alice", &clicks()).unwrap();
        let b = system.enroll("bob", &clicks()).unwrap();
        assert_ne!(
            a.hash.digest, b.hash.digest,
            "user salt must differentiate hashes"
        );
    }

    #[test]
    fn verify_requires_correct_click_count() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut four = clicks();
        four.pop();
        assert!(matches!(
            system.verify(&stored, &four),
            Err(PasswordError::WrongClickCount {
                expected: 5,
                got: 4
            })
        ));
    }

    #[test]
    fn verify_rejects_clicks_outside_image() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut attempt = clicks();
        attempt[0] = Point::new(9999.0, 2.0);
        assert!(matches!(
            system.verify(&stored, &attempt),
            Err(PasswordError::ClickOutsideImage { index: 0 })
        ));
    }

    #[test]
    fn stored_record_survives_serialization_and_still_verifies() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let parsed = StoredPassword::from_record(&stored.to_record()).unwrap();
        assert!(system.verify(&parsed, &clicks()).unwrap());
        let off: Vec<Point> = clicks().iter().map(|p| p.offset(15.0, 0.0)).collect();
        assert!(!system.verify(&parsed, &off).unwrap());
    }

    #[test]
    fn scratch_verify_matches_plain_verify() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut scratch = VerifyScratch::new();
        let attempts: Vec<Vec<Point>> = vec![
            clicks(),
            clicks().iter().map(|p| p.offset(5.0, -5.0)).collect(),
            clicks().iter().map(|p| p.offset(30.0, 0.0)).collect(),
            clicks().iter().map(|p| p.offset(-2.0, 8.0)).collect(),
        ];
        for attempt in &attempts {
            assert_eq!(
                system
                    .verify_with_scratch(&stored, attempt, &mut scratch)
                    .unwrap(),
                system.verify(&stored, attempt).unwrap(),
            );
        }
    }

    #[test]
    fn scratch_survives_switching_records_and_configs() {
        // Cache keys (config, salt) must invalidate correctly when the same
        // scratch is reused across different users and schemes.
        let centered = system_centered();
        let robust = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::robust(6.0),
            5,
        );
        let a = centered.enroll("alice", &clicks()).unwrap();
        let b = centered.enroll("bob", &clicks()).unwrap();
        let c = robust.enroll("carol", &clicks()).unwrap();
        let mut scratch = VerifyScratch::new();
        for _ in 0..3 {
            assert!(centered
                .verify_with_scratch(&a, &clicks(), &mut scratch)
                .unwrap());
            assert!(centered
                .verify_with_scratch(&b, &clicks(), &mut scratch)
                .unwrap());
            assert!(robust
                .verify_with_scratch(&c, &clicks(), &mut scratch)
                .unwrap());
            // Cross-record attempts still fail.
            let off: Vec<Point> = clicks().iter().map(|p| p.offset(20.0, -20.0)).collect();
            assert!(!centered
                .verify_with_scratch(&a, &off, &mut scratch)
                .unwrap());
        }
    }

    #[test]
    fn scratch_verify_rejects_foreign_salt_and_iterations() {
        let system = system_centered();
        let other_iterations = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(9),
            7,
        );
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut scratch = VerifyScratch::new();
        // Wrong iteration count: structurally valid, must simply not verify.
        assert!(!other_iterations
            .verify_with_scratch(&stored, &clicks(), &mut scratch)
            .unwrap());
        // Tampered salt (as if the record were grafted onto another user).
        let mut grafted = stored.clone();
        grafted.username = "mallory".into();
        assert!(!system
            .verify_with_scratch(&grafted, &clicks(), &mut scratch)
            .unwrap());
    }

    #[test]
    fn split_phase_verify_agrees_with_one_shot_verify() {
        use gp_crypto::SaltedHasher;
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut scratch = VerifyScratch::new();
        let attempts: Vec<Vec<Point>> = vec![
            clicks(),
            clicks().iter().map(|p| p.offset(5.0, -5.0)).collect(),
            clicks().iter().map(|p| p.offset(30.0, 0.0)).collect(),
        ];
        for attempt in &attempts {
            let pre_image = system
                .prepare_verify(&stored, attempt, &mut scratch)
                .unwrap()
                .expect("provenance matches");
            let candidate =
                SaltedHasher::new(&stored.hash.salt).iterated(&pre_image, stored.hash.iterations);
            assert_eq!(
                system.finish_verify(&stored, &candidate),
                system.verify(&stored, attempt).unwrap(),
            );
        }
        // Foreign iteration count: prepare reports a definite non-match.
        let other = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(9),
            7,
        );
        assert!(other
            .prepare_verify(&stored, &clicks(), &mut scratch)
            .unwrap()
            .is_none());
        // Structural errors still surface as errors.
        assert!(system
            .prepare_verify(&stored, &clicks()[..3], &mut scratch)
            .is_err());
    }

    #[test]
    fn split_phase_enroll_agrees_with_one_shot_enroll() {
        use gp_crypto::SaltedHasher;
        let system = system_centered();
        let one_shot = system.enroll("alice", &clicks()).unwrap();
        let (record, pre_image) = system.prepare_enroll("alice", &clicks()).unwrap();
        assert_eq!(record.hash.salt, one_shot.hash.salt);
        assert_eq!(record.hash.iterations, one_shot.hash.iterations);
        let digest =
            SaltedHasher::new(&record.hash.salt).iterated(&pre_image, record.hash.iterations);
        let finished = GraphicalPasswordSystem::finish_enroll(record, digest);
        assert_eq!(
            finished, one_shot,
            "split-phase enrollment is bit-identical"
        );
        assert!(system.verify(&finished, &clicks()).unwrap());
        // Policy violations surface at prepare time.
        assert!(system.prepare_enroll("bob", &clicks()[..2]).is_err());
    }

    #[test]
    fn salt_matches_agrees_with_materialized_salt() {
        let hasher = PasswordHasher::new("dom", 3);
        for user in [&b"alice"[..], b"", b"a\x1fb"] {
            let salt = hasher.salt_for(user);
            assert!(salt_matches(&hasher, user, &salt));
            assert!(!salt_matches(&hasher, b"other", &salt));
        }
        assert!(!salt_matches(
            &PasswordHasher::new("dom2", 3),
            b"alice",
            &PasswordHasher::new("dom", 3).salt_for(b"alice")
        ));
    }

    #[test]
    fn enrollment_validates_policy() {
        let system = system_centered();
        assert!(matches!(
            system.enroll("alice", &clicks()[..3]),
            Err(PasswordError::WrongClickCount { .. })
        ));
    }

    #[test]
    fn static_grid_configuration_also_works_end_to_end() {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::static_grid(19.0),
            3,
        );
        let stored = system.enroll("carol", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
    }
}
