//! Enrollment and verification: the core graphical password system.

use crate::config::DiscretizationConfig;
use crate::error::PasswordError;
use crate::policy::PasswordPolicy;
use crate::stored::{ClickRecord, StoredPassword};
use gp_crypto::PasswordHasher;
use gp_discretization::DiscretizedClick;
use gp_geometry::{ImageDims, Point};

/// A click-based graphical password system: a password policy, a
/// discretization configuration and a password hasher.
///
/// This is the generic machinery; [`crate::schemes`] wraps it into the
/// concrete schemes the literature names (PassPoints, Cued Click-Points,
/// Persuasive Cued Click-Points).
#[derive(Debug, Clone)]
pub struct GraphicalPasswordSystem {
    policy: PasswordPolicy,
    config: DiscretizationConfig,
    hasher: PasswordHasher,
}

impl GraphicalPasswordSystem {
    /// Domain-separation label mixed into every password hash.
    pub const HASH_DOMAIN: &'static str = "gp-passwords/v1";

    /// Create a system with an explicit policy, discretization configuration
    /// and hash iteration count.
    pub fn new(policy: PasswordPolicy, config: DiscretizationConfig, iterations: u32) -> Self {
        Self {
            policy,
            config,
            hasher: PasswordHasher::new(Self::HASH_DOMAIN, iterations),
        }
    }

    /// A PassPoints-style system: five ordered clicks on a single image,
    /// hashed with the paper's example iteration count (1000).
    pub fn passpoints(image: ImageDims, config: DiscretizationConfig) -> Self {
        Self::new(
            PasswordPolicy::new(image, 5),
            config,
            PasswordHasher::DEFAULT_ITERATIONS,
        )
    }

    /// A system with a single click per password (used by Cued Click-Points,
    /// which hashes one click per image).
    pub fn single_click(image: ImageDims, config: DiscretizationConfig, iterations: u32) -> Self {
        Self::new(PasswordPolicy::new(image, 1), config, iterations)
    }

    /// The password policy.
    pub fn policy(&self) -> &PasswordPolicy {
        &self.policy
    }

    /// The discretization configuration.
    pub fn config(&self) -> &DiscretizationConfig {
        &self.config
    }

    /// The hash iteration count.
    pub fn iterations(&self) -> u32 {
        self.hasher.iterations
    }

    /// Discretize a click sequence at enrollment time.
    fn discretize_enrollment(&self, clicks: &[Point]) -> Vec<DiscretizedClick> {
        let scheme = self.config.build();
        clicks.iter().map(|p| scheme.enroll(p)).collect()
    }

    /// Enroll a new password for `username` from its original click-points.
    pub fn enroll(&self, username: &str, clicks: &[Point]) -> Result<StoredPassword, PasswordError> {
        self.policy.validate_enrollment(clicks)?;
        let discretized = self.discretize_enrollment(clicks);
        let pre_image = StoredPassword::encode_clicks(&discretized);
        let hash = self.hasher.hash(username.as_bytes(), &pre_image);
        Ok(StoredPassword {
            username: username.to_string(),
            config: self.config,
            policy: self.policy,
            clicks: discretized
                .iter()
                .map(|d| ClickRecord { grid_id: d.grid_id })
                .collect(),
            hash,
        })
    }

    /// Recompute the hash pre-image for a login attempt against a stored
    /// record, using only the record's clear data — exactly what a server
    /// that never saw the original coordinates can do.
    pub fn login_pre_image(
        &self,
        stored: &StoredPassword,
        clicks: &[Point],
    ) -> Result<Vec<u8>, PasswordError> {
        if clicks.len() != stored.clicks.len() {
            return Err(PasswordError::WrongClickCount {
                expected: stored.clicks.len(),
                got: clicks.len(),
            });
        }
        let scheme = stored.config.build();
        let mut discretized = Vec::with_capacity(clicks.len());
        for (record, login) in stored.clicks.iter().zip(clicks.iter()) {
            let cell = scheme.try_locate(&record.grid_id, login)?;
            discretized.push(DiscretizedClick {
                grid_id: record.grid_id,
                cell,
            });
        }
        Ok(StoredPassword::encode_clicks(&discretized))
    }

    /// Verify a login attempt against a stored record.
    ///
    /// Returns `Ok(true)` / `Ok(false)` for well-formed attempts and an
    /// error only for structurally invalid input (wrong click count, clicks
    /// outside the image, corrupt record).
    pub fn verify(&self, stored: &StoredPassword, clicks: &[Point]) -> Result<bool, PasswordError> {
        stored.policy.validate_login(clicks)?;
        let pre_image = self.login_pre_image(stored, clicks)?;
        Ok(stored
            .hash
            .verify_with(&self.hasher, stored.username.as_bytes(), &pre_image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_discretization::GridId;

    fn clicks() -> Vec<Point> {
        vec![
            Point::new(50.0, 60.0),
            Point::new(120.0, 200.0),
            Point::new(301.0, 75.0),
            Point::new(400.0, 310.0),
            Point::new(222.0, 111.0),
        ]
    }

    fn system_centered() -> GraphicalPasswordSystem {
        // Small iteration count keeps tests fast; the hashing math is the
        // same as with 1000 iterations.
        GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(9),
            5,
        )
    }

    #[test]
    fn enroll_then_exact_login_succeeds() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
    }

    #[test]
    fn login_within_tolerance_succeeds() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(9.0, -9.0)).collect();
        assert!(system.verify(&stored, &wobbly).unwrap());
    }

    #[test]
    fn login_outside_tolerance_fails() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let off: Vec<Point> = clicks().iter().map(|p| p.offset(10.0, 0.0)).collect();
        assert!(!system.verify(&stored, &off).unwrap());
    }

    #[test]
    fn single_wrong_click_fails_whole_password() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut attempt = clicks();
        attempt[4] = Point::new(10.0, 10.0);
        assert!(!system.verify(&stored, &attempt).unwrap());
    }

    #[test]
    fn click_order_matters() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut swapped = clicks();
        swapped.swap(0, 1);
        assert!(!system.verify(&stored, &swapped).unwrap());
    }

    #[test]
    fn robust_configuration_round_trips() {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::robust(6.0),
            5,
        );
        let stored = system.enroll("bob", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
        // All stored identifiers are robust grid indices.
        for c in &stored.clicks {
            assert!(matches!(c.grid_id, GridId::Robust { .. }));
        }
        // Within the guaranteed tolerance r = 6.
        let wobbly: Vec<Point> = clicks().iter().map(|p| p.offset(5.0, 5.0)).collect();
        assert!(system.verify(&stored, &wobbly).unwrap());
    }

    #[test]
    fn different_users_get_different_hashes_for_same_clicks() {
        let system = system_centered();
        let a = system.enroll("alice", &clicks()).unwrap();
        let b = system.enroll("bob", &clicks()).unwrap();
        assert_ne!(a.hash.digest, b.hash.digest, "user salt must differentiate hashes");
    }

    #[test]
    fn verify_requires_correct_click_count() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut four = clicks();
        four.pop();
        assert!(matches!(
            system.verify(&stored, &four),
            Err(PasswordError::WrongClickCount { expected: 5, got: 4 })
        ));
    }

    #[test]
    fn verify_rejects_clicks_outside_image() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let mut attempt = clicks();
        attempt[0] = Point::new(9999.0, 2.0);
        assert!(matches!(
            system.verify(&stored, &attempt),
            Err(PasswordError::ClickOutsideImage { index: 0 })
        ));
    }

    #[test]
    fn stored_record_survives_serialization_and_still_verifies() {
        let system = system_centered();
        let stored = system.enroll("alice", &clicks()).unwrap();
        let parsed = StoredPassword::from_record(&stored.to_record()).unwrap();
        assert!(system.verify(&parsed, &clicks()).unwrap());
        let off: Vec<Point> = clicks().iter().map(|p| p.offset(15.0, 0.0)).collect();
        assert!(!system.verify(&parsed, &off).unwrap());
    }

    #[test]
    fn enrollment_validates_policy() {
        let system = system_centered();
        assert!(matches!(
            system.enroll("alice", &clicks()[..3]),
            Err(PasswordError::WrongClickCount { .. })
        ));
    }

    #[test]
    fn static_grid_configuration_also_works_end_to_end() {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::static_grid(19.0),
            3,
        );
        let stored = system.enroll("carol", &clicks()).unwrap();
        assert!(system.verify(&stored, &clicks()).unwrap());
    }
}
