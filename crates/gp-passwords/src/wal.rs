//! Per-shard write-ahead logging and atomic snapshot primitives.
//!
//! The sharded store's original persistence (`std::fs::write` per shard)
//! had a crash window: a power cut mid-write truncates a shard file, the
//! loader rejects the whole directory, and every account enrolled since
//! the previous successful save is gone.  This module provides the two
//! building blocks that close that window, in the crash-only shape the
//! cheap-recovery literature argues for:
//!
//! * [`ShardWal`] — an append-only, length-prefixed, checksummed log of
//!   mutations (enroll / update / remove).  A mutation is acknowledged
//!   only after its record is appended (and, under
//!   [`FsyncPolicy::Always`], fsynced), so recovery can replay everything
//!   the server ever acked.  [`ShardWal::replay`] tolerates a *torn tail*
//!   — a final record cut at any byte by a crash — and recovers exactly
//!   the preceding prefix.
//! * [`atomic_write`] — snapshot publication as `write tmp → fsync →
//!   rename → fsync dir`, so a snapshot file is either the complete old
//!   version or the complete new version, never a truncated hybrid.
//!
//! # Log format
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "GP-WAL1\n"                      (8 bytes)
//! record := len:u32be  check:u64be  payload  (len = payload length)
//! payload:= op:u8  data                      (checksum = FNV-1a 64 of payload)
//! op     := 1 enroll | 2 update | 3 remove
//! data   := StoredPassword::to_record() line (enroll/update)
//!         | username bytes                   (remove)
//! ```
//!
//! The log has a single appender (the owning shard, under its lock)
//! writing strictly forward, so a checksum/length violation on the
//! *final* record can only be the torn tail of a crashed append — replay
//! stops there and reports the dropped byte count.  A violation with
//! intact records *after* it cannot be a tear (nothing appends past an
//! unfinished record): that is mid-file corruption and replay surfaces
//! it as an error rather than silently truncating the acked suffix.
//! Likewise a record whose checksum *passes* but whose payload does not
//! parse is real corruption (or a software bug) and is an error.

use crate::stored::StoredPassword;
use crate::watermark::Watermark;
use std::fs::{File, OpenOptions};
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

/// File magic at the start of every WAL (8 bytes, versioned).
pub const WAL_MAGIC: &[u8; 8] = b"GP-WAL1\n";

/// Per-record header size: `u32` payload length + `u64` checksum.
const RECORD_HEADER: usize = 4 + 8;

/// Sanity cap on a single WAL record's payload.  A declared length past
/// this is treated as a torn/garbage tail, not an allocation request.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// FNV-1a 64-bit hash — the WAL record checksum (and the stable account
/// routing hash in [`crate::shard::shard_index`]).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// When appended WAL records are flushed to stable storage.
///
/// The trade is acknowledgement latency against the crash loss window:
/// see the README's durability section for measured numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged mutation survives any
    /// crash.  One disk flush per enrollment.
    Always,
    /// `fsync` every N appends: a crash loses at most the last N−1
    /// acknowledged mutations.  `Batch(1)` behaves like `Always`.
    Batch(u32),
    /// Never `fsync` from the store; the OS flushes on its own schedule.
    /// A crash loses whatever the page cache held (typically up to tens
    /// of seconds).  Process-exit-safe, power-loss-unsafe.
    Never,
}

/// One mutation kind recorded in the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// A new account was enrolled.
    Enroll,
    /// An existing account's record was inserted/replaced (bulk load).
    Update,
    /// An account was removed.
    Remove,
}

impl WalOp {
    fn tag(self) -> u8 {
        match self {
            WalOp::Enroll => 1,
            WalOp::Update => 2,
            WalOp::Remove => 3,
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// Replay as an account insert (new account).
    Enroll(StoredPassword),
    /// Replay as an account insert/replace.
    Update(StoredPassword),
    /// Replay as an account removal.
    Remove(String),
}

impl WalEntry {
    /// The mutation kind this entry records.
    pub fn op(&self) -> WalOp {
        match self {
            WalEntry::Enroll(_) => WalOp::Enroll,
            WalEntry::Update(_) => WalOp::Update,
            WalEntry::Remove(_) => WalOp::Remove,
        }
    }

    /// The account the entry mutates.
    pub fn username(&self) -> &str {
        match self {
            WalEntry::Enroll(record) | WalEntry::Update(record) => &record.username,
            WalEntry::Remove(username) => username,
        }
    }

    /// Encode as a WAL record payload (`op:u8` + data) — the exact bytes
    /// [`ShardWal`] appends, reused verbatim as the replication stream's
    /// record body so primary and backup log bit-identical records.
    pub fn to_payload(&self) -> Vec<u8> {
        let data: String = match self {
            WalEntry::Enroll(record) | WalEntry::Update(record) => record.to_record(),
            WalEntry::Remove(username) => username.clone(),
        };
        let mut payload = Vec::with_capacity(1 + data.len());
        payload.push(self.op().tag());
        payload.extend_from_slice(data.as_bytes());
        payload
    }

    /// Decode a WAL record payload (the inverse of
    /// [`WalEntry::to_payload`]).  Errors are `InvalidData`: an intact
    /// checksum over an unparseable payload is corruption, not a crash
    /// artifact.
    pub fn from_payload(payload: &[u8]) -> std::io::Result<Self> {
        let invalid = |reason: String| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
        let (tag, data) = payload
            .split_first()
            .ok_or_else(|| invalid("empty WAL payload".into()))?;
        let text =
            std::str::from_utf8(data).map_err(|_| invalid("non-UTF-8 WAL payload".into()))?;
        match tag {
            1 | 2 => {
                let record = StoredPassword::from_record(text)
                    .map_err(|e| invalid(format!("unparseable WAL record: {e}")))?;
                Ok(if *tag == 1 {
                    WalEntry::Enroll(record)
                } else {
                    WalEntry::Update(record)
                })
            }
            3 => Ok(WalEntry::Remove(text.to_string())),
            other => Err(invalid(format!("unknown WAL op tag {other}"))),
        }
    }
}

/// The result of replaying one WAL file.
#[derive(Debug)]
pub struct WalReplay {
    /// Decoded records, in append order.
    pub entries: Vec<WalEntry>,
    /// Bytes dropped at the end of the file (a record torn by a crash
    /// mid-append; zero for a cleanly closed log).
    pub torn_bytes: u64,
}

/// An open per-shard write-ahead log (single appender: the owning shard,
/// under its lock).
#[derive(Debug)]
pub struct ShardWal {
    file: File,
    path: PathBuf,
    /// Commit sequencing and fsync-policy decisions (pure state machine,
    /// model tested under gp-sched — see [`crate::watermark::Watermark`]).
    mark: Watermark,
    /// Current file length in bytes (header included).
    len: u64,
    appends: u64,
    syncs: u64,
    /// A failed append could not be rolled back: the bytes past the last
    /// good record are in an unknown state, so further appends would land
    /// *after* a tear and be silently dropped by replay.  All appends
    /// fail until the log is recovered (reopened) or reset.
    poisoned: bool,
}

impl ShardWal {
    /// Open `path` for appending, creating it (with the magic header) if
    /// absent or empty.  Existing contents are preserved — replay them
    /// with [`ShardWal::replay`] *before* opening for append.
    pub fn open_or_create(path: &Path, policy: FsyncPolicy) -> std::io::Result<Self> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let mut len = file.metadata()?.len();
        if len < WAL_MAGIC.len() as u64 {
            // Fresh log — or a crash tore the very creation of one.  The
            // bytes so far carry no records; restart the header cleanly.
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            len = WAL_MAGIC.len() as u64;
        }
        Ok(Self {
            file,
            path: path.to_path_buf(),
            mark: Watermark::new(policy),
            len,
            appends: 0,
            syncs: 0,
            poisoned: false,
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current log length in bytes (magic header included) — the
    /// compaction trigger input.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Appends since this handle was opened.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Fsyncs issued by this handle (policy-driven and explicit).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Commit sequence of the last appended record (0 before any append).
    pub fn appended_seq(&self) -> u64 {
        self.mark.appended_seq()
    }

    /// The commit-sequence watermark: the highest appended sequence known
    /// to be on stable storage.  `durable_seq() == appended_seq()` means
    /// every append is committed; anything above the watermark is still
    /// awaiting its group-commit barrier (or rides the OS page cache
    /// under [`FsyncPolicy::Never`]).
    pub fn durable_seq(&self) -> u64 {
        self.mark.durable_seq()
    }

    /// Append a stored-password mutation ([`WalOp::Enroll`] or
    /// [`WalOp::Update`]) and flush per the fsync policy.  When this
    /// returns `Ok`, the record is in the log (and on stable storage
    /// under [`FsyncPolicy::Always`]) — only then may the mutation be
    /// acknowledged.
    pub fn append_record(&mut self, op: WalOp, record: &StoredPassword) -> std::io::Result<()> {
        debug_assert!(
            op != WalOp::Remove,
            "removals carry a username, not a record"
        );
        self.append_payload(op, record.to_record().as_bytes(), false)
            .map(|_| ())
    }

    /// Append a stored-password mutation *without* the per-append policy
    /// flush — the group-commit fast path.  The record is in the log (a
    /// crash may still lose it until a barrier lands) but **must not be
    /// acknowledged** until [`ShardWal::group_commit`] or
    /// [`ShardWal::sync`] advances the durable watermark past the
    /// returned commit sequence.
    pub fn append_record_deferred(
        &mut self,
        op: WalOp,
        record: &StoredPassword,
    ) -> std::io::Result<u64> {
        debug_assert!(
            op != WalOp::Remove,
            "removals carry a username, not a record"
        );
        self.append_payload(op, record.to_record().as_bytes(), true)
    }

    /// Append an account removal and flush per the fsync policy.
    pub fn append_remove(&mut self, username: &str) -> std::io::Result<()> {
        self.append_payload(WalOp::Remove, username.as_bytes(), false)
            .map(|_| ())
    }

    /// The group-commit barrier: flush every deferred append per the
    /// fsync policy in **one** disk operation, instead of one per
    /// append.  `Always` syncs if anything is outstanding, `Batch(n)`
    /// syncs once `n` appends (deferred or not) have accumulated,
    /// `Never` leaves the flush to the OS as usual.  Returns the durable
    /// commit-sequence watermark after the barrier — under `Always`,
    /// every previously appended record is committed when this returns.
    pub fn group_commit(&mut self) -> std::io::Result<u64> {
        if self.mark.barrier_needs_sync() {
            self.sync()?;
        }
        Ok(self.mark.durable_seq())
    }

    /// Append a decoded entry (replication apply path: the backup logs
    /// the streamed record into its own WAL before acknowledging it).
    pub fn append_entry(&mut self, entry: &WalEntry) -> std::io::Result<()> {
        match entry {
            WalEntry::Enroll(record) => self.append_record(WalOp::Enroll, record),
            WalEntry::Update(record) => self.append_record(WalOp::Update, record),
            WalEntry::Remove(username) => self.append_remove(username),
        }
    }

    fn append_payload(&mut self, op: WalOp, data: &[u8], deferred: bool) -> std::io::Result<u64> {
        if self.poisoned {
            return Err(std::io::Error::other(format!(
                "{}: WAL poisoned by an earlier unrecoverable append failure",
                self.path.display()
            )));
        }
        let mut payload = Vec::with_capacity(1 + data.len());
        payload.push(op.tag());
        payload.extend_from_slice(data);
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        buf.extend_from_slice(&fnv1a64(&payload).to_be_bytes());
        buf.extend_from_slice(&payload);
        let start = self.len;
        let seq = self.mark.begin_append();
        match self.write_and_flush(&buf, deferred) {
            Ok(()) => {
                self.len = start + buf.len() as u64;
                self.appends += 1;
                Ok(seq)
            }
            // A failed append (ENOSPC, EIO, fsync failure) is about to be
            // NACKed to the caller — so its bytes must not stay in the
            // log: left in place they would either resurrect the refused
            // mutation at recovery (fsync failed after a complete write)
            // or, worse, sit as a mid-file tear that replay treats as the
            // end of the log, silently dropping every *later* acked
            // record.  Roll back to the last good record; if even that
            // fails, poison the log so no later append can land past the
            // tear.
            Err(e) => {
                self.mark.rollback_append();
                let rolled_back = self.file.set_len(start).is_ok()
                    && self.file.seek(std::io::SeekFrom::End(0)).is_ok();
                if rolled_back {
                    let _ = self.file.sync_all();
                } else {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// One write call (a crash can still tear it mid-record, but replay
    /// recovers the full prefix regardless of where the tear lands).
    /// Non-deferred appends flush per the fsync policy; deferred ones
    /// only accumulate toward the next [`ShardWal::group_commit`].
    fn write_and_flush(&mut self, buf: &[u8], deferred: bool) -> std::io::Result<()> {
        self.file.write_all(buf)?;
        if deferred {
            self.mark.note_deferred();
            return Ok(());
        }
        if self.mark.note_flushed_append() {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush appended records to stable storage now, regardless of
    /// policy, advancing the durable commit-sequence watermark.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()?;
        self.syncs += 1;
        self.mark.note_synced();
        Ok(())
    }

    /// Truncate the log back to its magic header — called after the
    /// shard's snapshot has been atomically published, which supersedes
    /// every logged record.  Durable immediately; but even if the
    /// truncation itself were lost to a crash, replaying the stale
    /// records over the snapshot is idempotent.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        // Append mode writes at the (new) end-of-file; rewind is only
        // needed for platforms that track the cursor independently.
        self.file.seek(std::io::SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.syncs += 1;
        self.len = WAL_MAGIC.len() as u64;
        // Every logged record is superseded by the published snapshot:
        // the watermark catches up (monotonic — it never rewinds).
        self.mark.note_synced();
        // Truncating to the header discards any un-rolled-back tear.
        self.poisoned = false;
        Ok(())
    }

    /// Whether an unrecoverable append failure has disabled this log
    /// (every further append fails until [`ShardWal::reset`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Test hook: mark the log poisoned, as an unrecoverable append
    /// failure would.
    #[cfg(test)]
    pub(crate) fn poison_for_test(&mut self) {
        self.poisoned = true;
    }

    /// Decode every intact record in the WAL at `path`, tolerating a torn
    /// final record (reported via [`WalReplay::torn_bytes`]).
    ///
    /// A missing file replays as empty (a crash before the first append).
    /// A present file with a wrong magic, an intact (checksummed) record
    /// that fails to parse, or a checksum failure on an *interior* record
    /// (intact records follow the damage, so it cannot be a tear) is an
    /// error — that is corruption, not a crash artifact.
    pub fn replay(path: &Path) -> std::io::Result<WalReplay> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalReplay {
                    entries: Vec::new(),
                    torn_bytes: 0,
                })
            }
            Err(e) => return Err(e),
        };
        if bytes.len() < WAL_MAGIC.len() {
            // The file's very creation was torn; no record can exist.
            return Ok(WalReplay {
                entries: Vec::new(),
                torn_bytes: bytes.len() as u64,
            });
        }
        if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(corrupt(path, "bad WAL magic"));
        }
        let mut entries = Vec::new();
        let mut at = WAL_MAGIC.len();
        while at < bytes.len() {
            let rest = &bytes[at..];
            if rest.len() < RECORD_HEADER {
                break; // torn mid-header
            }
            // gp-lint: allow(L4, fixed-width slice of a len-checked buffer)
            let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
            if len == 0 || len > MAX_RECORD_LEN {
                break; // torn mid-header: garbage length
            }
            // gp-lint: allow(L4, fixed-width slice of a len-checked buffer)
            let check = u64::from_be_bytes(rest[4..RECORD_HEADER].try_into().expect("8 bytes"));
            let end = RECORD_HEADER + len as usize;
            if rest.len() < end {
                break; // torn mid-payload
            }
            let payload = &rest[RECORD_HEADER..end];
            if fnv1a64(payload) != check {
                // A failed checksum on the *final* record is the torn
                // tail of a crashed append.  But the log has a single
                // appender writing strictly forward, so if intact
                // records follow the damaged one, the damage happened
                // *after* the record was written — that is mid-file
                // corruption (bit rot, a misdirected write), and
                // stopping here would silently drop every later acked
                // record.  Surface it instead.
                let following = intact_records_at(&bytes[at + end..]);
                if following > 0 {
                    return Err(corrupt(
                        path,
                        &format!(
                            "mid-file corruption: record at byte {at} fails its checksum \
                             but {following} intact record(s) follow — not a torn tail"
                        ),
                    ));
                }
                break; // torn mid-overwrite of the final record
            }
            entries.push(decode_payload(path, payload)?);
            at += end;
        }
        Ok(WalReplay {
            entries,
            torn_bytes: (bytes.len() - at) as u64,
        })
    }
}

fn decode_payload(path: &Path, payload: &[u8]) -> std::io::Result<WalEntry> {
    WalEntry::from_payload(payload).map_err(|e| corrupt(path, &e.to_string()))
}

/// How many intact (length + checksum) records sit at the *start* of
/// `bytes`.  Replay's look-ahead: records that parse cleanly after a
/// damaged one prove the damage is interior corruption, not a torn tail.
fn intact_records_at(bytes: &[u8]) -> usize {
    let mut count = 0;
    let mut at = 0;
    while bytes.len() - at >= RECORD_HEADER {
        let rest = &bytes[at..];
        // gp-lint: allow(L4, fixed-width slice of a len-checked buffer)
        let len = u32::from_be_bytes(rest[..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_LEN {
            break;
        }
        let end = RECORD_HEADER + len as usize;
        if rest.len() < end {
            break;
        }
        // gp-lint: allow(L4, fixed-width slice of a len-checked buffer)
        let check = u64::from_be_bytes(rest[4..RECORD_HEADER].try_into().expect("8 bytes"));
        if fnv1a64(&rest[RECORD_HEADER..end]) != check {
            break;
        }
        count += 1;
        at += end;
    }
    count
}

fn corrupt(path: &Path, reason: &str) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("{}: {reason}", path.display()),
    )
}

/// Atomically publish `contents` at `path`: write `<path>.tmp`, fsync it,
/// rename over `path`, then fsync the parent directory so the rename
/// itself is durable.  A reader (or a recovery after a crash at any
/// point) sees either the complete old file or the complete new one.
pub fn atomic_write(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let mut file_name = path
        .file_name()
        .ok_or_else(|| corrupt(path, "atomic_write target has no file name"))?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(contents)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Flush a directory's entry table (making renames/creates/removes under
/// it durable).  Best-effort on platforms where directories cannot be
/// opened for syncing.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    match File::open(dir) {
        Ok(handle) => handle.sync_all(),
        // Opening a directory read-only fails on some platforms (e.g.
        // Windows); the rename is still atomic, only its durability
        // ordering is left to the OS there.
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiscretizationConfig;
    use crate::policy::PasswordPolicy;
    use crate::system::GraphicalPasswordSystem;
    use gp_geometry::Point;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gp-wal-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(name: &str, seed: f64) -> StoredPassword {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(6),
            2,
        );
        let clicks: Vec<Point> = (0..5)
            .map(|i| Point::new(30.0 + seed + 70.0 * i as f64, 20.0 + seed + 55.0 * i as f64))
            .collect();
        system.enroll(name, &clicks).unwrap()
    }

    #[test]
    fn append_replay_round_trip_all_ops() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("shard-000.wal");
        let (a, b) = (sample("alice", 0.0), sample("bob", 3.0));
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Always).unwrap();
            wal.append_record(WalOp::Enroll, &a).unwrap();
            wal.append_record(WalOp::Update, &b).unwrap();
            wal.append_remove("alice").unwrap();
            assert_eq!(wal.appends(), 3);
            assert!(wal.syncs() >= 3, "Always fsyncs every append");
        }
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay.entries,
            vec![
                WalEntry::Enroll(a),
                WalEntry::Update(b),
                WalEntry::Remove("alice".into())
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_appends_after_existing_records() {
        let dir = temp_dir("reopen");
        let path = dir.join("w.wal");
        let (a, b) = (sample("alice", 0.0), sample("bob", 3.0));
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
            wal.append_record(WalOp::Enroll, &a).unwrap();
        }
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
            wal.append_record(WalOp::Enroll, &b).unwrap();
        }
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(
            replay.entries,
            vec![WalEntry::Enroll(a), WalEntry::Enroll(b)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_exact_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join("w.wal");
        let records: Vec<StoredPassword> = (0..3)
            .map(|i| sample(&format!("user{i}"), i as f64))
            .collect();
        let mut boundaries = vec![WAL_MAGIC.len() as u64];
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
            for record in &records {
                wal.append_record(WalOp::Enroll, record).unwrap();
                boundaries.push(wal.len_bytes());
            }
        }
        let full = std::fs::read(&path).unwrap();
        let torn = dir.join("torn.wal");
        for cut in 0..=full.len() {
            std::fs::write(&torn, &full[..cut]).unwrap();
            let replay = ShardWal::replay(&torn).unwrap();
            if cut < WAL_MAGIC.len() {
                // The file's creation itself was torn: nothing replays.
                assert!(replay.entries.is_empty(), "cut at byte {cut}");
                assert_eq!(replay.torn_bytes, cut as u64);
                continue;
            }
            // How many whole records fit below the cut?
            let intact = boundaries.iter().filter(|b| **b <= cut as u64).count() - 1;
            assert_eq!(
                replay.entries.len(),
                intact,
                "cut at byte {cut}: exactly the intact prefix replays"
            );
            for (entry, record) in replay.entries.iter().zip(&records) {
                assert_eq!(*entry, WalEntry::Enroll(record.clone()));
            }
            assert_eq!(
                replay.torn_bytes,
                cut as u64 - boundaries[intact],
                "cut at byte {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_checksum_drops_only_the_final_record() {
        let dir = temp_dir("checksum");
        let path = dir.join("w.wal");
        let (a, b) = (sample("alice", 0.0), sample("bob", 3.0));
        let first_end;
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
            wal.append_record(WalOp::Enroll, &a).unwrap();
            first_end = wal.len_bytes() as usize;
            wal.append_record(WalOp::Enroll, &b).unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries, vec![WalEntry::Enroll(a)]);
        assert_eq!(replay.torn_bytes, (bytes.len() - first_end) as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_unparseable_payloads_are_errors_not_torn_tails() {
        let dir = temp_dir("corrupt");
        let bad_magic = dir.join("m.wal");
        std::fs::write(&bad_magic, b"NOTAWAL!record-bytes").unwrap();
        assert!(ShardWal::replay(&bad_magic).is_err());

        // A checksummed record whose payload is not a parseable account
        // line: corruption, not a crash artifact.
        let bad_payload = dir.join("p.wal");
        let payload = [&[1u8][..], b"not a stored password line"].concat();
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_be_bytes());
        bytes.extend_from_slice(&payload);
        std::fs::write(&bad_payload, &bytes).unwrap();
        assert!(ShardWal::replay(&bad_payload).is_err());

        // Missing file: empty replay (crash before the first append).
        let missing = ShardWal::replay(&dir.join("nope.wal")).unwrap();
        assert!(missing.entries.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_checksum_flip_is_an_error_not_a_silent_truncation() {
        let dir = temp_dir("interior");
        let path = dir.join("w.wal");
        let records: Vec<StoredPassword> = (0..3)
            .map(|i| sample(&format!("user{i}"), i as f64))
            .collect();
        let mut boundaries = vec![WAL_MAGIC.len()];
        {
            let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
            for record in &records {
                wal.append_record(WalOp::Enroll, record).unwrap();
                boundaries.push(wal.len_bytes() as usize);
            }
        }
        let pristine = std::fs::read(&path).unwrap();
        // Flip one payload byte in each *interior* record (0 and 1):
        // intact records follow, so replay must refuse rather than drop
        // the acked suffix.
        for interior in 0..2 {
            let mut bytes = pristine.clone();
            bytes[boundaries[interior + 1] - 1] ^= 0xff;
            std::fs::write(&path, &bytes).unwrap();
            let err = ShardWal::replay(&path).expect_err("interior damage must error");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert!(
                err.to_string().contains("mid-file corruption"),
                "distinct report, got: {err}"
            );
        }
        // The same flip on the *final* record stays a torn tail.
        let mut bytes = pristine.clone();
        *bytes.last_mut().unwrap() ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert!(replay.torn_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_payload_codec_round_trips_all_ops() {
        let record = sample("alice", 1.0);
        for entry in [
            WalEntry::Enroll(record.clone()),
            WalEntry::Update(record),
            WalEntry::Remove("alice".into()),
        ] {
            let payload = entry.to_payload();
            assert_eq!(WalEntry::from_payload(&payload).unwrap(), entry);
            assert_eq!(entry.username(), "alice");
            assert_eq!(payload[0], entry.op().tag());
        }
        assert!(WalEntry::from_payload(&[]).is_err());
        assert!(WalEntry::from_payload(&[9, b'x']).is_err(), "unknown tag");
    }

    #[test]
    fn batch_policy_syncs_every_n_appends() {
        let dir = temp_dir("batch");
        let path = dir.join("w.wal");
        let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Batch(3)).unwrap();
        let open_syncs = wal.syncs();
        for i in 0..7 {
            wal.append_record(WalOp::Enroll, &sample(&format!("u{i}"), i as f64))
                .unwrap();
        }
        assert_eq!(
            wal.syncs() - open_syncs,
            2,
            "7 appends at Batch(3) = 2 syncs"
        );
        wal.sync().unwrap();
        assert_eq!(wal.syncs() - open_syncs, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_truncates_to_header_and_new_appends_replay_alone() {
        let dir = temp_dir("reset");
        let path = dir.join("w.wal");
        let (a, b) = (sample("alice", 0.0), sample("bob", 3.0));
        let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Always).unwrap();
        wal.append_record(WalOp::Enroll, &a).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.len_bytes(), WAL_MAGIC.len() as u64);
        wal.append_record(WalOp::Enroll, &b).unwrap();
        drop(wal);
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries, vec![WalEntry::Enroll(b)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_log_refuses_appends_until_reset() {
        let dir = temp_dir("poison");
        let path = dir.join("w.wal");
        let (a, b) = (sample("alice", 0.0), sample("bob", 3.0));
        let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Always).unwrap();
        wal.append_record(WalOp::Enroll, &a).unwrap();
        wal.poison_for_test();
        assert!(wal.is_poisoned());
        // No append may land past a potential tear: it would be dropped
        // by replay while its caller believed it was acknowledged.
        assert!(wal.append_record(WalOp::Enroll, &b).is_err());
        assert!(wal.append_remove("alice").is_err());
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries, vec![WalEntry::Enroll(a)]);
        // Truncating to the header discards the tear and re-arms the log.
        wal.reset().unwrap();
        assert!(!wal.is_poisoned());
        wal.append_record(WalOp::Enroll, &b.clone()).unwrap();
        drop(wal);
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries, vec![WalEntry::Enroll(b)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_appends_commit_once_per_group_and_advance_the_watermark() {
        let dir = temp_dir("group");
        let path = dir.join("w.wal");
        let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Always).unwrap();
        let open_syncs = wal.syncs();
        let mut seqs = Vec::new();
        for i in 0..5 {
            let seq = wal
                .append_record_deferred(WalOp::Enroll, &sample(&format!("u{i}"), i as f64))
                .unwrap();
            seqs.push(seq);
        }
        assert_eq!(seqs, vec![1, 2, 3, 4, 5], "commit sequences are dense");
        assert_eq!(wal.appended_seq(), 5);
        assert_eq!(
            wal.durable_seq(),
            0,
            "deferred appends stay below the watermark until the barrier"
        );
        assert_eq!(wal.syncs() - open_syncs, 0, "no per-append fsync");
        let watermark = wal.group_commit().unwrap();
        assert_eq!(watermark, 5, "one barrier commits the whole group");
        assert_eq!(wal.durable_seq(), 5);
        assert_eq!(wal.syncs() - open_syncs, 1, "5 appends, 1 fsync");
        // An empty barrier is free.
        assert_eq!(wal.group_commit().unwrap(), 5);
        assert_eq!(wal.syncs() - open_syncs, 1);
        // Every deferred record replays.
        drop(wal);
        let replay = ShardWal::replay(&path).unwrap();
        assert_eq!(replay.entries.len(), 5);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_respects_batch_and_never_policies() {
        let dir = temp_dir("group-policy");
        let batch = dir.join("b.wal");
        let mut wal = ShardWal::open_or_create(&batch, FsyncPolicy::Batch(4)).unwrap();
        let open_syncs = wal.syncs();
        for i in 0..3 {
            wal.append_record_deferred(WalOp::Enroll, &sample(&format!("u{i}"), i as f64))
                .unwrap();
        }
        wal.group_commit().unwrap();
        assert_eq!(wal.syncs() - open_syncs, 0, "3 deferred < Batch(4)");
        wal.append_record_deferred(WalOp::Enroll, &sample("u3", 3.0))
            .unwrap();
        wal.group_commit().unwrap();
        assert_eq!(wal.syncs() - open_syncs, 1, "4th append fills the batch");
        assert_eq!(wal.durable_seq(), 4);

        let never = dir.join("n.wal");
        let mut wal = ShardWal::open_or_create(&never, FsyncPolicy::Never).unwrap();
        wal.append_record_deferred(WalOp::Enroll, &sample("alice", 0.0))
            .unwrap();
        assert_eq!(wal.group_commit().unwrap(), 0, "Never leaves it to the OS");
        assert_eq!(wal.syncs(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_and_reset_catch_the_watermark_up() {
        let dir = temp_dir("watermark");
        let path = dir.join("w.wal");
        let mut wal = ShardWal::open_or_create(&path, FsyncPolicy::Never).unwrap();
        wal.append_record_deferred(WalOp::Enroll, &sample("alice", 0.0))
            .unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.durable_seq(), 1, "explicit sync commits regardless");
        wal.append_record_deferred(WalOp::Enroll, &sample("bob", 3.0))
            .unwrap();
        wal.reset().unwrap();
        assert_eq!(
            (wal.appended_seq(), wal.durable_seq()),
            (2, 2),
            "a snapshot supersedes the log; the watermark never rewinds"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_tmp() {
        let dir = temp_dir("atomic");
        let path = dir.join("shard-000.pwd");
        atomic_write(&path, b"first\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first\n");
        atomic_write(&path, b"second\n").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no tmp files survive publication");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
