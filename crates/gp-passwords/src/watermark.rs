//! Pure group-commit watermark arithmetic.
//!
//! [`Watermark`] is the state machine behind [`crate::wal::ShardWal`]'s
//! commit sequencing: which sequence numbers have been appended, which are
//! on stable storage, and when the fsync policy demands a sync. It touches
//! no I/O, so the gp-sched model tests (`tests/sched_watermark.rs`) can
//! drive it under a deterministic scheduler with a simulated disk and
//! exhaustively check the invariant the whole durability story rests on:
//! **no acknowledged sequence may exceed the durable watermark**.

use crate::wal::FsyncPolicy;

/// Append/durable sequence bookkeeping for one WAL, plus the fsync-policy
/// decision logic. The owner performs the actual disk writes and reports
/// outcomes back ([`Watermark::note_synced`], [`Watermark::rollback_append`]).
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    policy: FsyncPolicy,
    /// Commit sequence: incremented per appended record.  Monotonic for
    /// the life of the handle (a snapshot reset does not rewind it).
    seq: u64,
    /// The highest `seq` known to be on stable storage (advanced by every
    /// fsync).  Records with `seq > durable_seq()` are appended but not
    /// yet committed — they must not be acknowledged until a sync carries
    /// the watermark past them.
    durable: u64,
    /// Appends since the last fsync (drives [`FsyncPolicy::Batch`]).
    unsynced: u32,
}

impl Watermark {
    /// A fresh watermark at sequence zero.
    pub fn new(policy: FsyncPolicy) -> Self {
        Watermark {
            policy,
            seq: 0,
            durable: 0,
            unsynced: 0,
        }
    }

    /// Commit sequence of the last appended record (0 before any append).
    pub fn appended_seq(&self) -> u64 {
        self.seq
    }

    /// The highest appended sequence known to be on stable storage.
    pub fn durable_seq(&self) -> u64 {
        self.durable
    }

    /// Appends accumulated since the last sync.
    pub fn unsynced(&self) -> u32 {
        self.unsynced
    }

    /// Issue the commit sequence for a new append.
    pub fn begin_append(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// The append's bytes were rolled back (write or flush failed): retire
    /// its sequence. The durable watermark can never exceed the appended
    /// sequence, so it is clamped too.
    pub fn rollback_append(&mut self) {
        self.seq -= 1;
        self.durable = self.durable.min(self.seq);
    }

    /// A deferred append landed: it only accumulates toward the next
    /// group-commit barrier, regardless of policy.
    pub fn note_deferred(&mut self) {
        self.unsynced += 1;
    }

    /// A non-deferred append landed; returns whether the fsync policy
    /// demands a sync right now.
    pub fn note_flushed_append(&mut self) -> bool {
        match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(every) => {
                self.unsynced += 1;
                self.unsynced >= every.max(1)
            }
            FsyncPolicy::Never => false,
        }
    }

    /// Whether a group-commit barrier must sync now: `Always` whenever
    /// anything is outstanding, `Batch(n)` once `n` appends accumulated,
    /// `Never` leaves flushing to the OS.
    pub fn barrier_needs_sync(&self) -> bool {
        match self.policy {
            FsyncPolicy::Always => self.unsynced > 0,
            FsyncPolicy::Batch(every) => self.unsynced >= every.max(1),
            FsyncPolicy::Never => false,
        }
    }

    /// An fsync completed: every appended record is now on stable storage.
    pub fn note_synced(&mut self) {
        self.unsynced = 0;
        self.durable = self.seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_policy_syncs_every_flushed_append() {
        let mut w = Watermark::new(FsyncPolicy::Always);
        let seq = w.begin_append();
        assert_eq!(seq, 1);
        assert!(w.note_flushed_append());
        w.note_synced();
        assert_eq!(w.durable_seq(), 1);
        assert_eq!(w.unsynced(), 0);
    }

    #[test]
    fn batch_policy_syncs_at_threshold() {
        let mut w = Watermark::new(FsyncPolicy::Batch(3));
        for expect in [false, false, true] {
            w.begin_append();
            assert_eq!(w.note_flushed_append(), expect);
        }
        w.note_synced();
        assert_eq!(w.durable_seq(), 3);
    }

    #[test]
    fn deferred_appends_wait_for_the_barrier() {
        let mut w = Watermark::new(FsyncPolicy::Always);
        w.begin_append();
        w.note_deferred();
        assert_eq!(w.durable_seq(), 0);
        assert!(w.barrier_needs_sync());
        w.note_synced();
        assert_eq!(w.durable_seq(), 1);
        assert!(!w.barrier_needs_sync());
    }

    #[test]
    fn rollback_retires_the_seq_and_clamps_durable() {
        let mut w = Watermark::new(FsyncPolicy::Never);
        w.begin_append();
        w.note_synced();
        let seq = w.begin_append();
        assert_eq!(seq, 2);
        w.rollback_append();
        assert_eq!(w.appended_seq(), 1);
        assert_eq!(w.durable_seq(), 1);
    }

    #[test]
    fn never_policy_never_demands_sync() {
        let mut w = Watermark::new(FsyncPolicy::Never);
        w.begin_append();
        assert!(!w.note_flushed_append());
        assert!(!w.barrier_needs_sync());
        assert_eq!(w.durable_seq(), 0);
    }
}
