//! Crash-recovery harnesses for the durable sharded store.
//!
//! Two angles:
//!
//! * a deterministic torn-write harness that truncates a shard's WAL at
//!   *every byte* and asserts recovery yields exactly the intact prefix
//!   of enrollments — no account lost before the tear, none invented
//!   after it;
//! * a property test that drives an arbitrary interleaving of enrolls,
//!   updates and removals (with a snapshot compaction dropped somewhere
//!   in the middle) against a durable store and an in-memory mirror,
//!   then proves recovery — under an arbitrary *different* shard count —
//!   reproduces the mirror exactly.

use gp_geometry::Point;
use gp_passwords::prelude::*;
use gp_passwords::{DurabilityOptions, FsyncPolicy, ShardedPasswordStore};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn system() -> GraphicalPasswordSystem {
    GraphicalPasswordSystem::new(
        PasswordPolicy::study_default(),
        DiscretizationConfig::centered(6),
        2,
    )
}

fn clicks(seed: u32) -> Vec<Point> {
    (0..5)
        .map(|i| {
            let x = 30.0 + f64::from(seed % 50) + 70.0 * f64::from(i);
            let y = 20.0 + f64::from(seed / 50 % 40) + 55.0 * f64::from(i);
            Point::new(x, y)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gp-crash-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Truncate the (single) shard WAL at every byte boundary and assert the
/// recovered store holds exactly the enrollments whose records lie fully
/// below the cut.
#[test]
fn wal_truncated_at_every_byte_recovers_the_exact_prefix() {
    let sys = system();
    let dir = temp_dir("torn");
    let wal_path = dir.join("shard-000.wal");
    let users = 4usize;
    // `boundaries[i]` = WAL length right after user `i`'s enrollment was
    // acknowledged (fsync: Always ⇒ the on-disk length is current).
    let mut boundaries = Vec::new();
    {
        let store =
            ShardedPasswordStore::open_durable(&dir, 1, DurabilityOptions::default()).unwrap();
        for i in 0..users {
            store
                .enroll(&sys, &format!("user{i}"), &clicks(i as u32))
                .unwrap();
            boundaries.push(std::fs::metadata(&wal_path).unwrap().len());
        }
        // Dropped without compaction: the WAL alone carries the accounts.
    }
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    assert_eq!(wal_bytes.len() as u64, *boundaries.last().unwrap());

    let scratch = temp_dir("torn-scratch");
    for cut in 0..=wal_bytes.len() {
        copy_dir(&dir, &scratch);
        std::fs::write(scratch.join("shard-000.wal"), &wal_bytes[..cut]).unwrap();
        let recovered =
            ShardedPasswordStore::open_durable(&scratch, 1, DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("recovery must tolerate a cut at byte {cut}: {e}"));
        let intact = boundaries.iter().filter(|b| **b <= cut as u64).count();
        assert_eq!(
            recovered.len(),
            intact,
            "cut at byte {cut}: exactly the acked prefix recovers"
        );
        for i in 0..users {
            if i < intact {
                assert!(
                    recovered
                        .verify(&sys, &format!("user{i}"), &clicks(i as u32))
                        .unwrap(),
                    "cut at byte {cut}: user{i} lies below the tear and must verify"
                );
            } else {
                assert!(
                    recovered.get(&format!("user{i}")).is_none(),
                    "cut at byte {cut}: user{i} lies past the tear"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

/// A crash between snapshot-tmp creation and rename leaves a stray
/// `.pwd.tmp`; recovery must ignore its contents and clean it up on the
/// next compaction.
#[test]
fn stray_snapshot_tmp_files_are_ignored_and_cleaned() {
    let sys = system();
    let dir = temp_dir("stray-tmp");
    {
        let store =
            ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
        for i in 0..6 {
            store.enroll(&sys, &format!("user{i}"), &clicks(i)).unwrap();
        }
    }
    // Simulate the torn snapshot publication.
    std::fs::write(dir.join("shard-000.pwd.tmp"), b"half-written garbage").unwrap();
    let recovered =
        ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default()).unwrap();
    assert_eq!(recovered.len(), 6);
    drop(recovered);
    // open_durable re-snapshots every shard, which republishes over the
    // stray tmp path and renames it away.
    assert!(
        !dir.join("shard-000.pwd.tmp").exists(),
        "stray tmp file is consumed by the recovery compaction"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A checksum flip in an *interior* WAL record (intact records follow
/// it) is real corruption: `open_durable` must refuse with a distinct
/// mid-file-corruption report, never silently truncate the acked suffix
/// the way a torn *tail* is (correctly) dropped.
#[test]
fn interior_wal_corruption_fails_recovery_distinctly_from_a_torn_tail() {
    let sys = system();
    let dir = temp_dir("mid-file");
    {
        let store = ShardedPasswordStore::open_durable(
            &dir,
            1,
            DurabilityOptions {
                fsync: FsyncPolicy::Always,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        for i in 0..4 {
            store.enroll(&sys, &format!("user{i}"), &clicks(i)).unwrap();
        }
    }
    let wal = dir.join("shard-000.wal");
    let pristine = std::fs::read(&wal).unwrap();

    // Flip a payload byte of the *second* record: interior damage with
    // intact records following it.  Record framing: 8-byte magic, then
    // per record a 4-byte length + 8-byte checksum + payload.
    let second_start = {
        let len0 = u32::from_be_bytes(pristine[8..12].try_into().unwrap()) as usize;
        8 + 12 + len0
    };
    let mut corrupted = pristine.clone();
    corrupted[second_start + 12] ^= 0xff;
    std::fs::write(&wal, &corrupted).unwrap();
    let err = ShardedPasswordStore::open_durable(&dir, 1, DurabilityOptions::default())
        .expect_err("interior corruption must fail recovery");
    assert!(
        err.to_string().contains("mid-file corruption"),
        "distinct report for interior damage, got: {err}"
    );

    // The same flip on the final byte is a torn tail: recovery proceeds,
    // drops only the damaged last record, and counts the tail.
    let mut torn = pristine;
    *torn.last_mut().unwrap() ^= 0xff;
    std::fs::write(&wal, &torn).unwrap();
    let recovered = ShardedPasswordStore::open_durable(&dir, 1, DurabilityOptions::default())
        .expect("a torn tail is a crash artifact, not corruption");
    assert_eq!(recovered.len(), 3);
    let stats = recovered.durability_stats().unwrap();
    assert_eq!(stats.torn_tails, 1);
    assert_eq!(stats.replayed_records, 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One interleaved mutation against both stores.  `op`: 0 = enroll,
/// 1 = update (insert/replace), 2 = remove.
fn apply_op(
    durable: &ShardedPasswordStore,
    mirror: &ShardedPasswordStore,
    sys: &GraphicalPasswordSystem,
    op: u8,
    user: usize,
    seed: u32,
) {
    let name = format!("user{user}");
    match op {
        0 => {
            let a = durable.enroll(sys, &name, &clicks(seed));
            let b = mirror.enroll(sys, &name, &clicks(seed));
            assert_eq!(a.is_ok(), b.is_ok(), "duplicate-enroll outcomes agree");
        }
        1 => {
            let record = sys.enroll(&name, &clicks(seed)).unwrap();
            durable.insert(record.clone()).unwrap();
            mirror.insert(record).unwrap();
        }
        _ => {
            let a = durable.remove(&name).unwrap();
            let b = mirror.remove(&name).unwrap();
            assert_eq!(a, b, "removal outcomes agree");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot + WAL replay ≡ the in-memory store, for an arbitrary
    /// interleaving of enrolls/updates/removals, an arbitrary snapshot
    /// point, and arbitrary (and differing) shard counts on either side
    /// of the crash.
    #[test]
    fn recovery_reproduces_the_in_memory_store(
        ops in proptest::collection::vec((0u8..3u8, 0usize..10usize, 0u32..2000u32), 1..32),
        shards_before in 1usize..6usize,
        shards_after in 1usize..6usize,
        snapshot_at in 0usize..32usize,
        batched_fsync in 0u8..2u8,
    ) {
        let sys = system();
        let dir = temp_dir("prop");
        let fsync = if batched_fsync == 0 {
            FsyncPolicy::Always
        } else {
            // Batch(2) exercises the non-per-append sync path; page-cache
            // visibility keeps in-process recovery lossless either way.
            FsyncPolicy::Batch(2)
        };
        let options = DurabilityOptions { fsync, ..DurabilityOptions::default() };
        let mirror = ShardedPasswordStore::new(shards_before);
        {
            let durable =
                ShardedPasswordStore::open_durable(&dir, shards_before, options).unwrap();
            for (step, (op, user, seed)) in ops.iter().enumerate() {
                apply_op(&durable, &mirror, &sys, *op, *user, *seed);
                if step == snapshot_at {
                    // Mid-sequence compaction: later recovery must stitch
                    // snapshot + WAL tail together.
                    durable.snapshot_if_past(0).unwrap();
                }
            }
            // Crash: dropped with whatever snapshots/WALs exist.
        }
        let recovered =
            ShardedPasswordStore::open_durable(&dir, shards_after, options).unwrap();
        prop_assert_eq!(recovered.shard_count(), shards_after);
        prop_assert_eq!(recovered.records(), mirror.records());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The group-commit path: arbitrary interleavings of deferred enrolls
    /// and logins, batched into groups that commit with one barrier per
    /// group — and a simulated crash (directory copy) at *every*
    /// group-commit boundary.  Recovery of each crash image must
    /// reproduce the in-memory mirror exactly: everything acknowledged
    /// (committed) survives, and nothing the barrier did not cover is
    /// required to.
    #[test]
    fn group_committed_recovery_matches_the_mirror_at_every_commit_boundary(
        groups in proptest::collection::vec(
            proptest::collection::vec((0usize..12usize, 0u32..2000u32, 0u8..2u8), 1..6),
            1..6,
        ),
        shards in 1usize..4usize,
    ) {
        let sys = system();
        let dir = temp_dir("group-prop");
        let scratch = temp_dir("group-prop-crash");
        let options = DurabilityOptions::default();
        let mirror = ShardedPasswordStore::new(shards);
        {
            let durable =
                ShardedPasswordStore::open_durable(&dir, shards, options).unwrap();
            for (boundary, group) in groups.iter().enumerate() {
                // Settle the group: enrolls stage deferred WAL appends
                // (no fsync yet), logins interleave freely as reads.
                let mut touched = Vec::new();
                for (user, seed, kind) in group {
                    let name = format!("user{user}");
                    if *kind == 0 {
                        let record = sys.enroll(&name, &clicks(*seed)).unwrap();
                        let a = durable.insert_new_deferred(record.clone());
                        let b = mirror.insert_new(record);
                        prop_assert_eq!(
                            a.is_ok(),
                            b.is_ok(),
                            "duplicate-enroll outcomes agree at boundary {}",
                            boundary
                        );
                        if let Ok(shard) = a {
                            touched.push(shard);
                        }
                    } else {
                        let _ = durable.verify(&sys, &name, &clicks(*seed));
                    }
                }
                // The single barrier that releases the group's EnrollOks.
                durable.commit_shards(touched).unwrap();

                // Crash exactly at this boundary: a recovered copy of the
                // state directory must equal the mirror.
                copy_dir(&dir, &scratch);
                let recovered =
                    ShardedPasswordStore::open_durable(&scratch, shards, options)
                        .unwrap_or_else(|e| {
                            panic!("recovery at group boundary {boundary} failed: {e}")
                        });
                prop_assert_eq!(
                    recovered.records(),
                    mirror.records(),
                    "crash at group-commit boundary {} recovers the acked state",
                    boundary
                );
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&scratch).unwrap();
    }
}
