//! Integration tests for the runtime lock-order checker.
//!
//! The headline test acquires `wal.lock` and then `accounts.write` — the
//! inversion of the store's canonical `snap → accounts → wal` order — and
//! asserts lockdep panics on the spot in debug builds. The rest proves the
//! canonical chain stays silent, and that driving the *real* durable store
//! only ever records rank-increasing acquisition edges.

use gp_geometry::Point;
use gp_passwords::prelude::*;
use gp_passwords::{DurabilityOptions, LockClass, OrderedMutex, OrderedRwLock};
use std::path::PathBuf;

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order inversion")]
fn wal_then_accounts_inversion_panics() {
    let accounts = OrderedRwLock::new(LockClass::ACCOUNTS, ());
    let wal = OrderedMutex::new(LockClass::WAL, ());
    let _w = wal.lock();
    let _a = accounts.write(); // inverted: wal (rank 30) is still held
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order inversion")]
fn same_class_nesting_panics() {
    // The discipline is *strictly* increasing ranks, so nesting two WAL
    // mutexes (e.g. two shards' WALs) is also rejected.
    let wal_a = OrderedMutex::new(LockClass::WAL, ());
    let wal_b = OrderedMutex::new(LockClass::WAL, ());
    let _a = wal_a.lock();
    let _b = wal_b.lock();
}

#[test]
fn canonical_snap_accounts_wal_chain_is_accepted() {
    let snap = OrderedMutex::new(LockClass::SNAP, 1u32);
    let accounts = OrderedRwLock::new(LockClass::ACCOUNTS, 2u32);
    let wal = OrderedMutex::new(LockClass::WAL, 3u32);
    let s = snap.lock();
    let a = accounts.read();
    let w = wal.lock();
    assert_eq!(*s + *a + *w, 6);
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gp-lockdep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Drive the durable store through enroll / verify / snapshot / remove and
/// assert every acquisition edge lockdep observed goes strictly up the
/// canonical ranking. (An actual inversion would have panicked already —
/// this additionally pins down the edge *inventory* machinery.)
#[cfg(debug_assertions)]
#[test]
fn real_store_records_only_rank_increasing_edges() {
    let sys = GraphicalPasswordSystem::new(
        PasswordPolicy::study_default(),
        DiscretizationConfig::centered(6),
        2,
    );
    let clicks: Vec<Point> = (0..5)
        .map(|i| Point::new(40.0 + 70.0 * f64::from(i), 30.0 + 55.0 * f64::from(i)))
        .collect();
    let dir = temp_dir("edges");
    let store =
        gp_passwords::ShardedPasswordStore::open_durable(&dir, 2, DurabilityOptions::default())
            .unwrap();
    for i in 0..8 {
        store.enroll(&sys, &format!("user{i}"), &clicks).unwrap();
    }
    assert!(store.verify(&sys, "user3", &clicks).unwrap());
    store.snapshot_all().unwrap();
    store.remove("user5").unwrap();
    drop(store);

    let rank = |name: &str| match name {
        "snap" => LockClass::SNAP.rank,
        "accounts" => LockClass::ACCOUNTS.rank,
        "wal" => LockClass::WAL.rank,
        other => panic!("unexpected lock class `{other}` in edge graph"),
    };
    for ((held, acquired), (held_site, acquired_site)) in gp_passwords::lockdep::observed_edges() {
        assert!(
            rank(held) < rank(acquired),
            "edge `{held}` ({held_site}) -> `{acquired}` ({acquired_site}) is not rank-increasing"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
