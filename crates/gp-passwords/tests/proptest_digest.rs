//! Property tests for the anti-entropy range digests and the record-level
//! repair they drive.
//!
//! Two obligations, mirroring what the replication layer leans on:
//!
//! 1. **Digest soundness** — two stores' [`RangeDigest`]s over the same
//!    range are equal iff the underlying account-record sets are equal.
//!    The digest folds records commutatively, so the property must hold
//!    for any insertion order, any shard count, and any perturbation
//!    (a missing record, an extra record, or the same account with
//!    different record bytes).
//! 2. **Repair convergence** — for *arbitrary* divergent store pairs, one
//!    anti-entropy round (compare digests → exchange sorted entry lists →
//!    [`diff_range_entries`] → copy `push` primary→backup and `pull`
//!    backup→primary via `apply_replicated`) makes the digests equal.

use gp_geometry::Point;
use gp_passwords::wal::WalEntry;
use gp_passwords::{
    diff_range_entries, DiscretizationConfig, GraphicalPasswordSystem, PasswordPolicy,
    ShardedPasswordStore, StoredPassword,
};
use proptest::prelude::*;

fn system() -> GraphicalPasswordSystem {
    GraphicalPasswordSystem::new(
        PasswordPolicy::study_default(),
        DiscretizationConfig::centered(6),
        1,
    )
}

fn clicks(seed: u32) -> Vec<Point> {
    (0..5)
        .map(|i| {
            let x = 35.0 + f64::from(seed % 47) + 68.0 * f64::from(i);
            let y = 25.0 + f64::from(seed / 47 % 37) + 52.0 * f64::from(i);
            Point::new(x, y)
        })
        .collect()
}

/// Enroll a record for `name`.  Each call draws a fresh random salt, so
/// two records for the same name have different bytes — which is exactly
/// the "same account, diverged contents" case repair must handle.
fn record(sys: &GraphicalPasswordSystem, name: &str, seed: u32) -> StoredPassword {
    sys.enroll(name, &clicks(seed)).expect("enroll")
}

/// Dedup a generated name pool, preserving first occurrence.
fn distinct(names: &[String]) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    names
        .iter()
        .filter(|n| seen.insert(n.as_str().to_string()))
        .cloned()
        .collect()
}

fn store_of(records: &[StoredPassword], shards: usize) -> ShardedPasswordStore {
    let store = ShardedPasswordStore::new(shards);
    for r in records {
        store.insert(r.clone()).expect("insert");
    }
    store
}

/// How store B's copy of one of A's records diverges.
#[derive(Debug, Clone)]
enum Perturbation {
    /// B holds the identical record set.
    None,
    /// B is missing record `i`.
    Missing(usize),
    /// B holds a different record (fresh salt) for account `i`'s name.
    Diverged(usize),
    /// B holds one extra account A doesn't have.
    Extra,
}

fn arb_perturbation() -> impl Strategy<Value = Perturbation> {
    prop_oneof![
        Just(Perturbation::None),
        (0usize..64).prop_map(Perturbation::Missing),
        (0usize..64).prop_map(Perturbation::Diverged),
        Just(Perturbation::Extra),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Digest equality ⇔ record-set equality, for every perturbation
    /// shape and independent shard counts on the two sides.
    #[test]
    fn digests_equal_iff_account_sets_equal(
        raw_names in proptest::collection::vec("[a-z0-9]{1,10}", 1..10),
        perturbation in arb_perturbation(),
        shards_a in 1usize..6,
        shards_b in 1usize..6,
    ) {
        let sys = system();
        let names: Vec<String> = distinct(&raw_names);
        let records: Vec<StoredPassword> = names
            .iter()
            .enumerate()
            .map(|(i, name)| record(&sys, name, i as u32))
            .collect();
        let store_a = store_of(&records, shards_a);

        let mut b_records = records.clone();
        let expect_equal = match &perturbation {
            Perturbation::None => true,
            Perturbation::Missing(i) => {
                b_records.remove(i % records.len());
                false
            }
            Perturbation::Diverged(i) => {
                let i = i % records.len();
                b_records[i] = record(&sys, &names[i], 999);
                false
            }
            Perturbation::Extra => {
                b_records.push(record(&sys, "zz-extra-account", 1000));
                false
            }
        };
        let store_b = store_of(&b_records, shards_b);

        let digest_a = store_a.range_digest(|_| true);
        let digest_b = store_b.range_digest(|_| true);
        prop_assert_eq!(
            digest_a == digest_b,
            expect_equal,
            "digests {:?} vs {:?} for {:?}",
            digest_a,
            digest_b,
            perturbation
        );
    }

    /// One anti-entropy round converges arbitrary divergent pairs: after
    /// applying the diff (push primary→backup, pull backup→primary, both
    /// via the idempotent replicated-apply path), digests are equal and
    /// the primary's copy won every conflict.
    #[test]
    fn repair_converges_in_one_round(
        raw_names in proptest::collection::vec("[a-z0-9]{1,10}", 1..12),
        placements in proptest::collection::vec(0u8..4, 12),
        shards_a in 1usize..6,
        shards_b in 1usize..6,
    ) {
        let sys = system();
        let names = distinct(&raw_names);
        let primary = ShardedPasswordStore::new(shards_a);
        let backup = ShardedPasswordStore::new(shards_b);
        for (i, name) in names.iter().enumerate() {
            let r = record(&sys, name, i as u32);
            // 0: both agree, 1: primary-only, 2: backup-only, 3: conflict.
            match placements[i % placements.len()] {
                0 => {
                    primary.insert(r.clone()).unwrap();
                    backup.insert(r).unwrap();
                }
                1 => primary.insert(r).unwrap(),
                2 => backup.insert(r).unwrap(),
                _ => {
                    primary.insert(r).unwrap();
                    backup.insert(record(&sys, name, 500 + i as u32)).unwrap();
                }
            }
        }

        // The anti-entropy round, with the library primitives the
        // replication layer composes: digest check → entry exchange →
        // merge diff → replicated apply in both directions.
        if primary.range_digest(|_| true) != backup.range_digest(|_| true) {
            let diff = diff_range_entries(
                &primary.range_entries(|_| true),
                &backup.range_entries(|_| true),
            );
            for name in &diff.push {
                let r = primary.get(name).expect("push source present");
                backup.apply_replicated(&WalEntry::Update(r)).unwrap();
            }
            for name in &diff.pull {
                let r = backup.get(name).expect("pull source present");
                primary.apply_replicated(&WalEntry::Update(r)).unwrap();
            }
        }

        prop_assert_eq!(
            primary.range_digest(|_| true),
            backup.range_digest(|_| true),
            "one round must converge"
        );
        // Converged means converged on *records*, not just digests.
        let (a, b) = (primary.records(), backup.records());
        prop_assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            prop_assert_eq!(ra.to_record(), rb.to_record());
        }
    }
}
