//! Property-based tests for enrollment / verification invariants.

use gp_geometry::Point;
use gp_passwords::prelude::*;
use proptest::prelude::*;

/// Five clicks strictly inside the study image with a margin so that small
/// perturbations stay inside too.
fn arb_clicks() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((30.0..420.0f64, 30.0..300.0f64), 5)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn arb_config() -> impl Strategy<Value = DiscretizationConfig> {
    prop_oneof![
        (1u32..15).prop_map(DiscretizationConfig::centered),
        (1.0..15.0f64).prop_map(DiscretizationConfig::robust),
        (3.0..40.0f64).prop_map(DiscretizationConfig::static_grid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact original clicks always verify, for every scheme and
    /// tolerance.
    #[test]
    fn exact_reentry_always_verifies(clicks in arb_clicks(), config in arb_config()) {
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            config,
            2,
        );
        let stored = system.enroll("prop-user", &clicks).unwrap();
        prop_assert!(system.verify(&stored, &clicks).unwrap());
    }

    /// Any re-entry within the guaranteed tolerance verifies (for Centered
    /// and Robust; the static grid guarantees nothing).
    #[test]
    fn within_guaranteed_tolerance_verifies(
        clicks in arb_clicks(),
        centered in any::<bool>(),
        tol in 1u32..12,
        frac in 0.0..0.99f64,
        angle_seed in 0u8..4,
    ) {
        let config = if centered {
            DiscretizationConfig::centered(tol)
        } else {
            DiscretizationConfig::robust(tol as f64)
        };
        let system = GraphicalPasswordSystem::new(PasswordPolicy::study_default(), config, 2);
        let stored = system.enroll("prop-user", &clicks).unwrap();
        let r = config.guaranteed_tolerance();
        let delta = r * frac;
        let (dx, dy) = match angle_seed {
            0 => (delta, 0.0),
            1 => (-delta, delta),
            2 => (0.0, -delta),
            _ => (-delta, -delta),
        };
        let attempt: Vec<Point> = clicks.iter().map(|p| p.offset(dx, dy)).collect();
        prop_assert!(system.verify(&stored, &attempt).unwrap(),
            "re-entry {delta:.2}px off rejected with guaranteed tolerance {r}");
    }

    /// A re-entry beyond the scheme's maximum accepted distance on some
    /// click never verifies.
    #[test]
    fn beyond_maximum_distance_never_verifies(
        clicks in arb_clicks(),
        config in arb_config(),
        which in 0usize..5,
    ) {
        let system = GraphicalPasswordSystem::new(PasswordPolicy::study_default(), config, 2);
        let stored = system.enroll("prop-user", &clicks).unwrap();
        let max = config.build().maximum_accepted_distance();
        let mut attempt = clicks.clone();
        // Push one click beyond the maximum accepted distance, wrapping to
        // stay inside the image.
        let shift = max + 2.0;
        let p = attempt[which];
        let new_x = if p.x + shift < 450.0 { p.x + shift } else { p.x - shift };
        attempt[which] = Point::new(new_x.clamp(0.0, 450.0), p.y);
        prop_assert!(!system.verify(&stored, &attempt).unwrap());
    }

    /// Stored records survive text serialization and still verify / reject
    /// identically.
    #[test]
    fn record_serialization_preserves_behaviour(clicks in arb_clicks(), config in arb_config()) {
        let system = GraphicalPasswordSystem::new(PasswordPolicy::study_default(), config, 2);
        let stored = system.enroll("prop-user", &clicks).unwrap();
        let reloaded = StoredPassword::from_record(&stored.to_record()).unwrap();
        prop_assert_eq!(&reloaded, &stored);
        prop_assert!(system.verify(&reloaded, &clicks).unwrap());
    }

    /// Click order matters: a permuted (non-identical) click sequence never
    /// verifies when the clicks are far enough apart to land in different
    /// grid squares.
    #[test]
    fn permuted_clicks_rejected(config in arb_config()) {
        // Fixed, well-separated clicks (more than 2 * max grid square apart).
        let clicks = vec![
            Point::new(40.0, 40.0),
            Point::new(200.0, 60.0),
            Point::new(350.0, 120.0),
            Point::new(120.0, 250.0),
            Point::new(400.0, 300.0),
        ];
        let system = GraphicalPasswordSystem::new(PasswordPolicy::study_default(), config, 2);
        let stored = system.enroll("prop-user", &clicks).unwrap();
        let mut swapped = clicks.clone();
        swapped.swap(0, 4);
        prop_assert!(!system.verify(&stored, &swapped).unwrap());
    }

    /// The password store accepts each enrolled user and rejects logins
    /// against the wrong account's clicks.
    #[test]
    fn store_isolates_accounts(clicks_a in arb_clicks(), clicks_b in arb_clicks()) {
        // Ensure the two passwords differ meaningfully in at least one click.
        prop_assume!(clicks_a.iter().zip(&clicks_b).any(|(a, b)| a.chebyshev(b) > 50.0));
        let system = GraphicalPasswordSystem::new(
            PasswordPolicy::study_default(),
            DiscretizationConfig::centered(9),
            2,
        );
        let store = PasswordStore::new();
        store.enroll(&system, "alice", &clicks_a).unwrap();
        store.enroll(&system, "bob", &clicks_b).unwrap();
        prop_assert!(store.verify(&system, "alice", &clicks_a).unwrap());
        prop_assert!(store.verify(&system, "bob", &clicks_b).unwrap());
        prop_assert!(!store.verify(&system, "alice", &clicks_b).unwrap());
    }
}
