//! Property tests for the consistent-hash ring, in the style of Zave's
//! Chord-correctness obligations: whatever the membership and whatever
//! the key, ownership must be total and unique, and membership changes
//! must move only the key ranges adjacent to the changed node.  The
//! final property is the one the failover design rests on: removing a
//! key's owner promotes exactly the key's old second successor — the
//! node the replication layer streamed the backup copy to.

use gp_passwords::HashRing;
use proptest::prelude::*;

/// Build a ring from a case's node-name pool (deduplicated by `join`).
fn ring_of(nodes: &[String]) -> HashRing {
    HashRing::with_nodes(nodes)
}

fn distinct(nodes: &[String]) -> Vec<String> {
    let mut seen = std::collections::BTreeSet::new();
    nodes
        .iter()
        .filter(|n| seen.insert(n.as_str().to_string()))
        .cloned()
        .collect()
}

proptest! {
    /// Coverage + uniqueness: on a non-empty ring, every key resolves to
    /// exactly one owner, and that owner is a member.  Two independently
    /// constructed rings over the same membership (any insertion order)
    /// agree on every placement — routing needs no coordination.
    #[test]
    fn every_key_has_exactly_one_member_owner(
        nodes in proptest::collection::vec("[a-z]{1,12}", 1..8),
        keys in proptest::collection::vec("[a-zA-Z0-9_.-]{0,24}", 1..32),
    ) {
        let ring = ring_of(&nodes);
        let mut reversed = nodes.clone();
        reversed.reverse();
        let mirror = ring_of(&reversed);
        for key in &keys {
            let owner = ring.owner(key);
            prop_assert!(owner.is_some(), "non-empty ring must own {key:?}");
            let owner = owner.unwrap();
            prop_assert!(ring.contains(owner));
            prop_assert_eq!(mirror.owner(key), Some(owner),
                "placement must not depend on join order");
        }
    }

    /// Successor lists start at the owner, contain no duplicates, and
    /// enumerate every member when asked for enough nodes.
    #[test]
    fn successor_lists_are_distinct_prefixes_of_the_membership(
        nodes in proptest::collection::vec("[a-z]{1,12}", 1..8),
        key in "[a-zA-Z0-9_.-]{0,24}",
        n in 0usize..10,
    ) {
        let ring = ring_of(&nodes);
        let members = distinct(&nodes);
        let succ = ring.successors(&key, n);
        prop_assert_eq!(succ.len(), n.min(members.len()));
        if n > 0 {
            prop_assert_eq!(succ.first().copied(), ring.owner(&key));
        }
        let mut seen = std::collections::BTreeSet::new();
        for node in &succ {
            prop_assert!(ring.contains(node));
            prop_assert!(seen.insert(node.to_string()), "duplicate {node} in successors");
        }
    }

    /// Join moves keys only *to* the joining node: every key either keeps
    /// its owner or is now owned by the joiner.
    #[test]
    fn join_transfers_only_the_moved_range(
        nodes in proptest::collection::vec("[a-z]{1,12}", 1..7),
        joiner in "[A-Z]{1,12}",
        keys in proptest::collection::vec("[a-zA-Z0-9_.-]{0,24}", 1..32),
    ) {
        // The joiner's name class ([A-Z]) is disjoint from the pool's
        // ([a-z]), so it is genuinely new.
        let mut ring = ring_of(&nodes);
        let before: Vec<Option<String>> =
            keys.iter().map(|k| ring.owner(k).map(String::from)).collect();
        prop_assert!(ring.join(&joiner));
        for (key, old) in keys.iter().zip(&before) {
            let new = ring.owner(key).map(String::from);
            prop_assert!(
                new == *old || new.as_deref() == Some(joiner.as_str()),
                "{key:?} moved from {old:?} to {new:?}, not to the joiner"
            );
        }
    }

    /// Leave moves keys only *from* the leaving node: every key owned by
    /// someone else keeps its owner exactly.
    #[test]
    fn leave_transfers_only_the_departed_range(
        nodes in proptest::collection::vec("[a-z]{1,12}", 2..8),
        pick in 0usize..8,
        keys in proptest::collection::vec("[a-zA-Z0-9_.-]{0,24}", 1..32),
    ) {
        let members = distinct(&nodes);
        prop_assume!(members.len() >= 2);
        let leaver = &members[pick % members.len()];
        let mut ring = ring_of(&nodes);
        let before: Vec<String> =
            keys.iter().map(|k| ring.owner(k).unwrap().to_string()).collect();
        prop_assert!(ring.leave(leaver));
        for (key, old) in keys.iter().zip(&before) {
            if old != leaver {
                prop_assert_eq!(
                    ring.owner(key), Some(old.as_str()),
                    "{:?} must keep its owner when an unrelated node leaves", key
                );
            }
        }
    }

    /// The failover theorem: for any key, removing its owner promotes the
    /// key's old *second* successor — the node the replication layer
    /// placed the backup on.  This is what makes kill-the-primary safe:
    /// re-resolving the ring lands every orphaned key exactly where its
    /// replica already lives.
    #[test]
    fn killing_the_owner_promotes_the_backup(
        nodes in proptest::collection::vec("[a-z]{1,12}", 2..8),
        keys in proptest::collection::vec("[a-zA-Z0-9_.-]{0,24}", 1..32),
    ) {
        let members = distinct(&nodes);
        prop_assume!(members.len() >= 2);
        let ring = ring_of(&nodes);
        for key in &keys {
            let owner = ring.owner(key).unwrap().to_string();
            let backup = ring.backup(key).expect("≥2 members").to_string();
            prop_assert_ne!(&owner, &backup);
            let mut survivor = ring.clone();
            prop_assert!(survivor.leave(&owner));
            prop_assert_eq!(
                survivor.owner(key), Some(backup.as_str()),
                "{:?}: owner death must promote the replica holder", key
            );
        }
    }
}
