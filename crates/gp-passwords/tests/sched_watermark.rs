//! Exhaustive interleaving model test for the group-commit watermark.
//!
//! [`gp_passwords::watermark::Watermark`] is the pure state machine behind
//! `ShardWal`'s commit sequencing. Here it is wrapped in gp-sched shim
//! primitives and driven by concurrent appenders, a group-committer, and
//! an acknowledgement checker under the deterministic scheduler. Unlike
//! the `--cfg gp_sched` model tests in gp-netauth, this runs in the plain
//! test suite too: the shims are instrumented whenever an explorer
//! execution is active, no cfg switch needed.

use gp_passwords::wal::FsyncPolicy;
use gp_passwords::watermark::Watermark;
use gp_sched::{shim, thread, Explorer};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A WAL with a simulated disk: `stable` is the highest sequence whose
/// bytes an fsync has actually pushed to "stable storage".
struct SimWal {
    mark: Watermark,
    stable: u64,
}

impl SimWal {
    /// The group-commit barrier: fsync if the policy demands it, then
    /// advance the durable watermark — exactly `ShardWal::group_commit`'s
    /// ordering (sync_all first, bookkeeping after).
    fn group_commit(&mut self) -> u64 {
        if self.mark.barrier_needs_sync() {
            self.stable = self.mark.appended_seq();
            self.mark.note_synced();
        }
        self.mark.durable_seq()
    }
}

/// The durability invariant every committed number rests on: a sequence
/// acknowledged by `group_commit` (i.e. `<= durable_seq`) is on simulated
/// stable storage in *every* interleaving of appenders and committers.
#[test]
fn group_commit_never_acks_above_stable() {
    let exploration = Explorer::new().explore(|| {
        let wal = Arc::new(shim::Mutex::new(SimWal {
            mark: Watermark::new(FsyncPolicy::Always),
            stable: 0,
        }));
        let acked = Arc::new(shim::AtomicU64::new(0));

        let appenders: Vec<_> = (0..2)
            .map(|_| {
                let wal = Arc::clone(&wal);
                thread::spawn(move || {
                    let mut w = wal.lock();
                    // Group-commit fast path: append deferred, ack later.
                    let _seq = w.mark.begin_append();
                    w.mark.note_deferred();
                })
            })
            .collect();

        let committer = {
            let (wal, acked) = (Arc::clone(&wal), Arc::clone(&acked));
            thread::spawn(move || {
                let durable = wal.lock().group_commit();
                acked.fetch_max(durable, Ordering::SeqCst);
            })
        };

        // The checker races everyone: the ack watermark must never pass
        // simulated stable storage, whatever the schedule.
        {
            let w = wal.lock();
            let acked_now = acked.load(Ordering::SeqCst);
            assert!(
                acked_now <= w.stable,
                "acked seq {acked_now} above stable storage {}",
                w.stable
            );
            assert!(
                w.mark.durable_seq() <= w.stable,
                "durable watermark passed the disk"
            );
        }

        for a in appenders {
            a.join();
        }
        committer.join();

        // Final barrier: everything appended becomes durable, and the ack
        // watermark still never exceeds stable storage.
        let mut w = wal.lock();
        let durable = w.group_commit();
        acked.fetch_max(durable, Ordering::SeqCst);
        assert_eq!(durable, w.mark.appended_seq());
        assert!(acked.load(Ordering::SeqCst) <= w.stable);
    });
    assert!(
        exploration.schedules > 10,
        "appenders and committer must branch the schedule"
    );
    assert_eq!(
        exploration.pruned, 0,
        "exploration must be exhaustive, not truncated"
    );
}

/// A failed append rolls its sequence back; the durable watermark must
/// clamp and a subsequent barrier must re-establish durable == appended
/// in every schedule.
#[test]
fn rollback_keeps_watermark_consistent() {
    let exploration = Explorer::new().explore(|| {
        let wal = Arc::new(shim::Mutex::new(SimWal {
            mark: Watermark::new(FsyncPolicy::Batch(2)),
            stable: 0,
        }));
        let wal2 = Arc::clone(&wal);
        let failing = thread::spawn(move || {
            let mut w = wal2.lock();
            let _seq = w.mark.begin_append();
            // The write failed: retire the seq (ShardWal's error path).
            w.mark.rollback_append();
        });
        {
            let mut w = wal.lock();
            let _seq = w.mark.begin_append();
            w.mark.note_deferred();
        }
        failing.join();
        let mut w = wal.lock();
        assert!(w.mark.durable_seq() <= w.mark.appended_seq());
        w.stable = w.mark.appended_seq();
        w.mark.note_synced();
        assert_eq!(w.mark.durable_seq(), w.mark.appended_seq());
    });
    assert!(exploration.schedules > 1);
}
