//! Execution-state machine: one deterministic run of a model.
//!
//! An [`Execution`] serialises the model's OS threads so that exactly one
//! runs at a time. Every shim operation (lock, unlock, condvar wait/notify,
//! atomic access, spawn, join, yield) is a *yield point*: the running thread
//! hands the baton back to the scheduler, which records a scheduling choice
//! and wakes the chosen thread. The recorded choice list is the schedule
//! trace; replaying the same trace reproduces the run exactly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};
use std::time::Duration;

/// Global generation counter; each [`Execution`] gets a unique generation so
/// shim objects can detect that a cached object id belongs to a dead run.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Sentinel panic payload used to unwind model threads when the execution
/// halts (failure detected elsewhere, or the depth bound pruned the run).
/// The thread wrapper swallows it; it never escapes to the test harness.
pub(crate) struct HaltToken;

/// How the scheduler resolves multi-candidate choice points.
#[derive(Clone)]
pub(crate) enum Mode {
    /// Follow `script` for as long as it lasts, then always pick the first
    /// candidate. The DFS explorer and `replay` both use this.
    Scripted(Vec<usize>),
    /// Seeded xorshift choice at every decision; still fully recorded, so a
    /// failing random walk yields a scripted repro.
    Random(u64),
}

/// One recorded scheduling decision.
#[derive(Clone, Debug)]
pub(crate) struct Choice {
    /// Thread ids that were eligible at this point (post preemption bound).
    pub candidates: Vec<usize>,
    /// The thread id that actually ran.
    pub chosen: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    BlockedMutex(u64),
    BlockedCondvar { cv: u64, timed: bool },
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    state: ThreadState,
    /// Set when a timed condvar wait was woken by the timeout transition
    /// rather than a notify; consumed by the wait shim.
    timed_out: bool,
}

#[derive(Default)]
struct MutexInfo {
    owner: Option<usize>,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct CondvarInfo {
    waiters: Vec<usize>,
}

/// Why the execution stopped early.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Halt {
    Failure,
    Pruned,
}

struct ExecState {
    mode: Mode,
    threads: Vec<ThreadInfo>,
    active: Option<usize>,
    preemptions: usize,
    preemption_bound: Option<usize>,
    max_depth: usize,
    choices: Vec<Choice>,
    halt: Option<Halt>,
    failure: Option<String>,
    next_object: u64,
    mutexes: BTreeMap<u64, MutexInfo>,
    condvars: BTreeMap<u64, CondvarInfo>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn mutex_mut(&mut self, id: u64) -> &mut MutexInfo {
        self.mutexes.entry(id).or_default()
    }

    fn condvar_mut(&mut self, id: u64) -> &mut CondvarInfo {
        self.condvars.entry(id).or_default()
    }
}

/// Outcome of a single run, consumed by the explorer.
pub(crate) struct RunOutcome {
    pub choices: Vec<Choice>,
    pub failure: Option<String>,
    pub pruned: bool,
}

/// One deterministic execution of a model under the scheduler.
pub(crate) struct Execution {
    generation: u64,
    state: StdMutex<ExecState>,
    turn: StdCondvar,
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    // The scheduler's own lock is never left inconsistent by an unwinding
    // model thread; recover rather than cascade poison panics.
    r.unwrap_or_else(PoisonError::into_inner)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

impl Execution {
    pub(crate) fn new(mode: Mode, preemption_bound: Option<usize>, max_depth: usize) -> Arc<Self> {
        // gp-lint: allow(L6, generation ids need uniqueness only; objects publish via the execution lock)
        let generation = NEXT_GENERATION.fetch_add(1, Ordering::Relaxed);
        Arc::new(Execution {
            generation,
            state: StdMutex::new(ExecState {
                mode,
                threads: vec![ThreadInfo {
                    state: ThreadState::Runnable,
                    timed_out: false,
                }],
                active: Some(0),
                preemptions: 0,
                preemption_bound,
                max_depth,
                choices: Vec::new(),
                halt: None,
                failure: None,
                next_object: 0,
                mutexes: BTreeMap::new(),
                condvars: BTreeMap::new(),
                os_handles: Vec::new(),
            }),
            turn: StdCondvar::new(),
        })
    }

    /// Generation truncated to 32 bits for object tokens.
    pub(crate) fn generation32(&self) -> u64 {
        self.generation & 0xffff_ffff
    }

    /// The execution (and thread id) driving the calling OS thread, if any.
    pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Allocate a fresh per-execution object id for a shim primitive.
    pub(crate) fn alloc_object_id(&self) -> u64 {
        let mut st = unpoison(self.state.lock());
        st.next_object += 1;
        st.next_object
    }

    /// Run `model` as thread 0 of a fresh execution and wait for every
    /// model thread to exit. Returns the recorded schedule and any failure.
    pub(crate) fn run<F>(self: &Arc<Self>, model: F) -> RunOutcome
    where
        F: FnOnce() + Send + 'static,
    {
        let exec = Arc::clone(self);
        let root = std::thread::spawn(move || exec.thread_main(0, model));
        root.join().ok();
        // Spawned threads register their handles in the state; drain until
        // everyone has exited (a joined thread may have spawned more).
        loop {
            let handle = {
                let mut st = unpoison(self.state.lock());
                st.os_handles.pop()
            };
            match handle {
                Some(h) => {
                    h.join().ok();
                }
                None => break,
            }
        }
        let st = unpoison(self.state.lock());
        RunOutcome {
            choices: st.choices.clone(),
            failure: st.failure.clone(),
            pruned: st.halt == Some(Halt::Pruned),
        }
    }

    /// Body of every model OS thread: park until first scheduled, run the
    /// closure, translate panics into failures, then retire.
    pub(crate) fn thread_main<F>(self: Arc<Self>, tid: usize, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&self), tid)));
        if self.wait_until_scheduled(tid) {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                if !payload.is::<HaltToken>() {
                    let msg = panic_message(payload.as_ref());
                    let mut st = unpoison(self.state.lock());
                    if st.failure.is_none() {
                        st.failure = Some(format!("thread {tid} panicked: {msg}"));
                        st.halt = Some(Halt::Failure);
                    }
                }
            }
        }
        self.retire(tid);
        CURRENT.with(|c| *c.borrow_mut() = None);
    }

    fn wait_until_scheduled(&self, tid: usize) -> bool {
        let mut st = unpoison(self.state.lock());
        loop {
            if st.halt.is_some() {
                return false;
            }
            if st.active == Some(tid) {
                return true;
            }
            st = unpoison(self.turn.wait(st));
        }
    }

    /// Mark `tid` finished, wake joiners, and hand the baton onwards.
    fn retire(&self, tid: usize) {
        let mut st = unpoison(self.state.lock());
        st.threads[tid].state = ThreadState::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t].state == ThreadState::BlockedJoin(tid) {
                st.threads[t].state = ThreadState::Runnable;
            }
        }
        if st.halt.is_none() && st.active == Some(tid) {
            self.pick_next(&mut st);
        }
        self.turn.notify_all();
    }

    /// Record a scheduling decision and set `active` to the chosen thread.
    /// Detects deadlock (incl. lost wakeups), fires quiescent timeouts, and
    /// prunes at the depth bound.
    fn pick_next(&self, st: &mut ExecState) {
        if st.halt.is_some() {
            return;
        }
        let prev = st.active;
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        let mut candidates = runnable;
        let mut timeout_fire = false;
        if candidates.is_empty() {
            // Timed condvar waits only fire their timeout at quiescence:
            // the timeout is a scheduling transition of last resort, which
            // keeps the state space small and models "the notify path is
            // live" separately from "the timeout path is correct".
            let timed: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.state, ThreadState::BlockedCondvar { timed: true, .. }))
                .map(|(i, _)| i)
                .collect();
            if !timed.is_empty() {
                candidates = timed;
                timeout_fire = true;
            } else if st.threads.iter().any(|t| t.state != ThreadState::Finished) {
                st.failure = Some(describe_deadlock(st));
                st.halt = Some(Halt::Failure);
                return;
            } else {
                st.active = None;
                return;
            }
        } else if let (Some(p), Some(bound)) = (prev, st.preemption_bound) {
            // Preempting a still-runnable thread spends budget; once the
            // budget is gone the previous thread must continue.
            if st.preemptions >= bound
                && st.threads[p].state == ThreadState::Runnable
                && candidates.contains(&p)
            {
                candidates = vec![p];
            }
        }
        if st.choices.len() >= st.max_depth {
            st.halt = Some(Halt::Pruned);
            return;
        }
        let decision = st.choices.len();
        let chosen = match &mut st.mode {
            Mode::Scripted(script) => {
                if decision < script.len() {
                    let want = script[decision];
                    if !candidates.contains(&want) {
                        st.failure = Some(format!(
                            "schedule replay diverged at decision {decision}: scripted thread {want} \
                             is not among candidates {candidates:?} (model is nondeterministic \
                             beyond scheduling?)"
                        ));
                        st.halt = Some(Halt::Failure);
                        return;
                    }
                    want
                } else {
                    candidates[0]
                }
            }
            Mode::Random(seed) => {
                let r = xorshift(seed);
                candidates[(r % candidates.len() as u64) as usize]
            }
        };
        st.choices.push(Choice {
            candidates: candidates.clone(),
            chosen,
        });
        if let Some(p) = prev {
            if p != chosen && st.threads[p].state == ThreadState::Runnable {
                st.preemptions += 1;
            }
        }
        if timeout_fire {
            if let ThreadState::BlockedCondvar { cv, .. } = st.threads[chosen].state {
                let info = st.condvar_mut(cv);
                info.waiters.retain(|&w| w != chosen);
                st.threads[chosen].state = ThreadState::Runnable;
                st.threads[chosen].timed_out = true;
            }
        }
        st.active = Some(chosen);
    }

    /// Pick the next thread, wake it, and park until this thread is active
    /// again (or the execution halts). Must be entered with the state the
    /// caller wants recorded (Runnable for a plain yield, Blocked* when the
    /// caller just blocked itself).
    fn reschedule(&self, mut st: StdMutexGuard<'_, ExecState>, tid: usize) {
        if std::thread::panicking() {
            // Called from a guard Drop while a model assertion unwinds:
            // release bookkeeping already happened, do not park or panic
            // again (a second panic would abort the process).
            self.turn.notify_all();
            return;
        }
        if st.halt.is_none() {
            self.pick_next(&mut st);
        }
        self.turn.notify_all();
        loop {
            if st.halt.is_some() {
                drop(st);
                panic::panic_any(HaltToken);
            }
            if st.active == Some(tid) && st.threads[tid].state == ThreadState::Runnable {
                return;
            }
            st = unpoison(self.turn.wait(st));
        }
    }

    /// A plain preemption point: the calling thread stays runnable but the
    /// scheduler may move the baton elsewhere.
    pub(crate) fn yield_point(&self, tid: usize) {
        let st = unpoison(self.state.lock());
        self.reschedule(st, tid);
    }

    /// Acquire shim mutex `id`, blocking (in scheduler terms) if held.
    /// `yield_first` inserts the pre-acquire branch point; condvar
    /// reacquisition skips it because the wake itself was the decision.
    pub(crate) fn mutex_lock(&self, tid: usize, id: u64, yield_first: bool) {
        if yield_first {
            self.yield_point(tid);
        }
        loop {
            let mut st = unpoison(self.state.lock());
            if st.halt.is_some() {
                drop(st);
                panic::panic_any(HaltToken);
            }
            let m = st.mutex_mut(id);
            if m.owner.is_none() {
                m.owner = Some(tid);
                return;
            }
            m.waiters.push(tid);
            st.threads[tid].state = ThreadState::BlockedMutex(id);
            self.reschedule(st, tid);
        }
    }

    /// Release shim mutex `id`; all scheduler-level waiters become runnable
    /// and race for reacquisition under the explorer's choices.
    pub(crate) fn mutex_unlock(&self, tid: usize, id: u64) {
        let mut st = unpoison(self.state.lock());
        let m = st.mutex_mut(id);
        m.owner = None;
        let waiters: Vec<usize> = m.waiters.drain(..).collect();
        for w in waiters {
            st.threads[w].state = ThreadState::Runnable;
        }
        if st.halt.is_some() {
            self.turn.notify_all();
            return;
        }
        self.reschedule(st, tid);
    }

    /// Atomically release `mutex_id` and wait on condvar `cv_id`.
    /// Returns `true` when woken by the quiescent-timeout transition.
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cv_id: u64,
        mutex_id: u64,
        timeout: Option<Duration>,
    ) -> bool {
        {
            let mut st = unpoison(self.state.lock());
            let m = st.mutex_mut(mutex_id);
            m.owner = None;
            let waiters: Vec<usize> = m.waiters.drain(..).collect();
            for w in waiters {
                st.threads[w].state = ThreadState::Runnable;
            }
            st.condvar_mut(cv_id).waiters.push(tid);
            st.threads[tid].state = ThreadState::BlockedCondvar {
                cv: cv_id,
                timed: timeout.is_some(),
            };
            st.threads[tid].timed_out = false;
            self.reschedule(st, tid);
        }
        let fired = {
            let mut st = unpoison(self.state.lock());
            std::mem::take(&mut st.threads[tid].timed_out)
        };
        if fired {
            if let Some(d) = timeout {
                // Burn the real duration so wall-clock deadline arithmetic in
                // production wait loops observes an expired deadline. Model
                // tests therefore use millisecond-scale timeouts.
                std::thread::sleep(d);
            }
        }
        self.mutex_lock(tid, mutex_id, false);
        fired
    }

    /// Wake one or all waiters of condvar `cv_id`.
    pub(crate) fn condvar_notify(&self, tid: usize, cv_id: u64, all: bool) {
        let mut st = unpoison(self.state.lock());
        let info = st.condvar_mut(cv_id);
        let woken: Vec<usize> = if all {
            info.waiters.drain(..).collect()
        } else {
            info.waiters.drain(..1.min(info.waiters.len())).collect()
        };
        for w in woken {
            st.threads[w].state = ThreadState::Runnable;
            st.threads[w].timed_out = false;
        }
        if st.halt.is_some() {
            self.turn.notify_all();
            return;
        }
        self.reschedule(st, tid);
    }

    /// Register a new model thread and start its OS thread. Returns the new
    /// thread id.
    pub(crate) fn spawn_thread<F>(self: &Arc<Self>, parent: usize, f: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let child = {
            let mut st = unpoison(self.state.lock());
            st.threads.push(ThreadInfo {
                state: ThreadState::Runnable,
                timed_out: false,
            });
            st.threads.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::spawn(move || exec.thread_main(child, f));
        {
            let mut st = unpoison(self.state.lock());
            st.os_handles.push(handle);
        }
        self.yield_point(parent);
        child
    }

    /// Block until thread `target` finishes.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        loop {
            let mut st = unpoison(self.state.lock());
            if st.halt.is_some() {
                drop(st);
                panic::panic_any(HaltToken);
            }
            if st.threads[target].state == ThreadState::Finished {
                return;
            }
            st.threads[tid].state = ThreadState::BlockedJoin(target);
            self.reschedule(st, tid);
        }
    }
}

fn describe_deadlock(st: &ExecState) -> String {
    let mut lost_wakeup = false;
    let mut lines = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        match t.state {
            ThreadState::BlockedMutex(id) => {
                lines.push(format!("  thread {i} blocked on Mutex#{id}"))
            }
            ThreadState::BlockedCondvar { cv, timed } => {
                if !timed {
                    lost_wakeup = true;
                }
                lines.push(format!(
                    "  thread {i} blocked in Condvar#{cv}::{}",
                    if timed { "wait_timeout" } else { "wait" }
                ));
            }
            ThreadState::BlockedJoin(target) => {
                lines.push(format!("  thread {i} blocked joining thread {target}"))
            }
            ThreadState::Runnable | ThreadState::Finished => {}
        }
    }
    let headline = if lost_wakeup {
        "deadlock (suspected lost wakeup: a thread is parked in an untimed Condvar::wait with no runnable notifier)"
    } else {
        "deadlock"
    };
    format!("{headline}\n{}", lines.join("\n"))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
