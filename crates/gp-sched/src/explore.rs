//! Schedule exploration: exhaustive DFS over scheduling choices, seeded
//! random walks for deeper state spaces, and exact trace replay.

use crate::exec::{Choice, Execution, Mode, RunOutcome};
use std::sync::Arc;

/// Statistics returned by a completed exploration.
#[derive(Clone, Copy, Debug)]
pub struct Exploration {
    /// Number of complete schedules executed.
    pub schedules: usize,
    /// Of those, how many were truncated by the depth bound. Non-zero means
    /// the exploration was bounded-exhaustive rather than exhaustive.
    pub pruned: usize,
}

/// Deterministic interleaving explorer.
///
/// Runs a model closure many times, each under a different thread schedule,
/// until every schedule reachable within the preemption and depth bounds has
/// been executed. A model failure (assertion panic, deadlock, lost wakeup)
/// aborts the exploration by panicking with the failing schedule trace; feed
/// that trace to [`Explorer::replay`] to re-run the exact interleaving under
/// a debugger or with extra logging.
///
/// ```
/// use gp_sched::{Explorer, shim};
/// use std::sync::Arc;
///
/// Explorer::new().explore(|| {
///     let m = Arc::new(shim::Mutex::new(0u64));
///     let m2 = Arc::clone(&m);
///     let t = gp_sched::thread::spawn(move || *m2.lock() += 1);
///     *m.lock() += 1;
///     t.join();
///     assert_eq!(*m.lock(), 2);
/// });
/// ```
pub struct Explorer {
    preemption_bound: Option<usize>,
    max_depth: usize,
    max_schedules: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            preemption_bound: Some(2),
            max_depth: 5_000,
            max_schedules: 200_000,
        }
    }
}

impl Explorer {
    /// An explorer with the default bounds (preemption bound 2, depth 5000,
    /// at most 200k schedules).
    pub fn new() -> Self {
        Self::default()
    }

    /// Limit the number of times the scheduler may preempt a runnable
    /// thread. `None` removes the bound (full exhaustive search).
    pub fn preemption_bound(mut self, bound: Option<usize>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Truncate any schedule after this many decisions. Truncated runs are
    /// counted in [`Exploration::pruned`].
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Panic (state space not exhausted) after this many schedules.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Exhaustively run `model` under every schedule within the bounds.
    /// Panics with a replayable trace on the first failing schedule.
    pub fn explore<F>(&self, model: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut script: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut pruned = 0usize;
        loop {
            let out = self.run_one(Mode::Scripted(script.clone()), &model);
            schedules += 1;
            if out.pruned {
                pruned += 1;
            }
            if let Some(f) = out.failure {
                panic!("{}", format_failure(&f, &out.choices));
            }
            if schedules >= self.max_schedules {
                panic!(
                    "gp-sched: state space not exhausted within {} schedules; tighten the model \
                     or raise max_schedules",
                    self.max_schedules
                );
            }
            match next_script(&out.choices) {
                Some(next) => script = next,
                None => break,
            }
        }
        Exploration { schedules, pruned }
    }

    /// Run `walks` random schedules seeded from `seed`. Reaches states far
    /// beyond the DFS depth budget; failures still panic with an exact
    /// scripted trace.
    pub fn random_walks<F>(&self, seed: u64, walks: usize, model: F) -> Exploration
    where
        F: Fn() + Send + Sync + 'static,
    {
        let model = Arc::new(model);
        let mut pruned = 0usize;
        for i in 0..walks {
            let walk_seed = seed
                .wrapping_add(i as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                | 1;
            let out = self.run_one(Mode::Random(walk_seed), &model);
            if out.pruned {
                pruned += 1;
            }
            if let Some(f) = out.failure {
                panic!(
                    "{}",
                    format_failure(&format!("{f} (random walk {i}, seed {seed})"), &out.choices)
                );
            }
        }
        Exploration {
            schedules: walks,
            pruned,
        }
    }

    /// Re-run `model` under the exact schedule in `trace` (the
    /// comma-separated thread ids printed by a failure panic). Panics with
    /// the reproduced failure, or returns normally if the trace no longer
    /// fails.
    pub fn replay<F>(&self, trace: &str, model: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let script: Vec<usize> = trace
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.parse::<usize>()
                    .unwrap_or_else(|_| panic!("gp-sched: bad trace element {s:?}"))
            })
            .collect();
        let model = Arc::new(model);
        let out = self.run_one(Mode::Scripted(script), &model);
        if let Some(f) = out.failure {
            panic!("{}", format_failure(&f, &out.choices));
        }
    }

    fn run_one<F>(&self, mode: Mode, model: &Arc<F>) -> RunOutcome
    where
        F: Fn() + Send + Sync + 'static,
    {
        let exec = Execution::new(mode, self.preemption_bound, self.max_depth);
        let m = Arc::clone(model);
        exec.run(move || m())
    }
}

/// Compute the next DFS script: deepest decision with an untried candidate,
/// prefix preserved, that candidate substituted. `None` when exhausted.
fn next_script(choices: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..choices.len()).rev() {
        let c = &choices[i];
        let pos = c.candidates.iter().position(|&t| t == c.chosen)?;
        if pos + 1 < c.candidates.len() {
            let mut script: Vec<usize> = choices[..i].iter().map(|c| c.chosen).collect();
            script.push(c.candidates[pos + 1]);
            return Some(script);
        }
    }
    None
}

fn format_failure(failure: &str, choices: &[Choice]) -> String {
    let trace: Vec<String> = choices.iter().map(|c| c.chosen.to_string()).collect();
    let trace = trace.join(",");
    format!(
        "gp-sched: {failure}\n  after {} scheduling decisions\n  schedule trace: {trace}\n  \
         replay with: Explorer::new().replay(\"{trace}\", model)",
        choices.len()
    )
}
