//! # gp-sched — deterministic thread-interleaving explorer
//!
//! A loom-style model checker for the workspace's blocking coordination
//! protocols. Models run on real OS threads, but a scheduler serialises
//! them: every sync operation (lock, condvar wait/notify, atomic access,
//! spawn, join) is a yield point where the scheduler picks which thread
//! runs next. [`Explorer::explore`] enumerates those choices exhaustively
//! (DFS with a preemption bound and depth bound); [`Explorer::random_walks`]
//! samples deeper schedules from a seed. Deadlocks, lost wakeups, and model
//! assertion failures panic with a comma-separated schedule trace that
//! [`Explorer::replay`] re-executes exactly.
//!
//! ## Shims and the `sync` facade
//!
//! [`shim`] holds the instrumented primitives. Production types that want
//! model coverage import [`sync`], which is the shims under
//! `--cfg gp_sched` and thin zero-cost wrappers over `std::sync` otherwise,
//! so release builds pay nothing. The facade API is deliberately
//! non-poisoning (`lock()` returns the guard directly) and `wait_timeout`
//! returns `(guard, timed_out: bool)`.
//!
//! Timeout semantics under the scheduler: a `wait_timeout` only times out
//! when no other thread is runnable, and then sleeps the real remaining
//! duration first — so production deadline loops behave identically, and
//! model tests should use millisecond-scale timeouts.
//!
//! No `unsafe` anywhere: the shim mutex wraps a std mutex that is never
//! contended while the scheduler serialises threads.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod explore;
pub mod shim;

pub use explore::{Exploration, Explorer};
pub use shim::thread;

/// Cooperative yield point (see [`shim::thread::yield_now`]).
pub fn yield_now() {
    shim::thread::yield_now();
}

/// Sync primitives facade: gp-sched shims under `--cfg gp_sched`, thin
/// non-poisoning wrappers over `std::sync` otherwise. Code written against
/// this module compiles identically in both worlds.
#[cfg(gp_sched)]
pub mod sync {
    pub use crate::shim::{AtomicBool, AtomicU64, Condvar, Mutex, MutexGuard};
    pub use std::sync::atomic::Ordering;
}

/// Sync primitives facade: gp-sched shims under `--cfg gp_sched`, thin
/// non-poisoning wrappers over `std::sync` otherwise. Code written against
/// this module compiles identically in both worlds.
#[cfg(not(gp_sched))]
pub mod sync {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    pub use std::sync::MutexGuard;
    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
    use std::time::Duration;

    /// Non-poisoning wrapper over `std::sync::Mutex` matching the shim API.
    pub struct Mutex<T> {
        inner: StdMutex<T>,
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Mutex { .. }")
        }
    }

    impl<T> Mutex<T> {
        /// Create a new mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: StdMutex::new(value),
            }
        }

        /// Acquire the lock, recovering from poison (a panicking holder
        /// must not wedge later lockers).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Consume the mutex and return its value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Non-poisoning wrapper over `std::sync::Condvar` matching the shim
    /// API: `wait_timeout` returns `(guard, timed_out)`.
    #[derive(Default)]
    pub struct Condvar {
        inner: StdCondvar,
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Condvar { .. }")
        }
    }

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Self {
            Condvar {
                inner: StdCondvar::new(),
            }
        }

        /// Block until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner
                // gp-lint: allow(L7, facade forwards a single wait; predicate loops are the caller's contract as with std)
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner)
        }

        /// Block until notified or `timeout` elapses; the boolean is `true`
        /// on timeout.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            // gp-lint: allow(L7, facade forwards a single wait; predicate loops are the caller's contract as with std)
            match self.inner.wait_timeout(guard, timeout) {
                Ok((g, res)) => (g, res.timed_out()),
                Err(e) => {
                    let (g, res) = e.into_inner();
                    (g, res.timed_out())
                }
            }
        }

        /// Wait until `condition` returns false.
        pub fn wait_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            condition: F,
        ) -> MutexGuard<'a, T>
        where
            F: FnMut(&mut T) -> bool,
        {
            self.inner
                .wait_while(guard, condition)
                .unwrap_or_else(PoisonError::into_inner)
        }

        /// Wait until `condition` returns false or `timeout` elapses; the
        /// boolean is `true` when the deadline passed with the condition
        /// still holding.
        pub fn wait_timeout_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
            condition: F,
        ) -> (MutexGuard<'a, T>, bool)
        where
            F: FnMut(&mut T) -> bool,
        {
            match self.inner.wait_timeout_while(guard, timeout, condition) {
                Ok((g, res)) => (g, res.timed_out()),
                Err(e) => {
                    let (g, res) = e.into_inner();
                    (g, res.timed_out())
                }
            }
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}
