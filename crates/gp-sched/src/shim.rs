//! Instrumented sync primitives. Under an active [`crate::Explorer`]
//! execution every operation is a scheduling yield point; outside one they
//! degrade to plain std behaviour, so code built against the shims still
//! works in ordinary tests.
//!
//! The shims contain no `unsafe`: each `Mutex` wraps a real `std` mutex
//! that is never contended while the scheduler serialises threads, so guard
//! lifetimes and `Deref` come from std for free.

use crate::exec::Execution;
use std::sync::atomic::Ordering;
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};
use std::time::{Duration, Instant};

/// Lazily-bound identity of a shim object within the current execution.
/// Packed as `generation << 32 | id`; a stale generation means the object
/// outlived a previous execution and gets a fresh id.
struct ObjToken(std::sync::atomic::AtomicU64);

impl ObjToken {
    const fn new() -> Self {
        ObjToken(std::sync::atomic::AtomicU64::new(0))
    }

    fn resolve(&self, exec: &Arc<Execution>) -> u64 {
        let packed = self.0.load(Ordering::SeqCst);
        if packed >> 32 == exec.generation32() {
            return packed & 0xffff_ffff;
        }
        let id = exec.alloc_object_id();
        self.0
            .store((exec.generation32() << 32) | id, Ordering::SeqCst);
        id
    }
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Mutual exclusion with scheduler-visible acquire/release points.
/// Non-poisoning: a panicking holder does not wedge later lockers.
pub struct Mutex<T> {
    inner: StdMutex<T>,
    token: ObjToken,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never locks: a Debug that acquired the lock would itself be a
        // scheduling point and could deadlock inside assertions.
        f.pad("Mutex { .. }")
    }
}

impl<T> Mutex<T> {
    /// Create a new shim mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
            token: ObjToken::new(),
        }
    }

    /// Acquire the lock, parking this model thread in the scheduler if it
    /// is held. Returns the guard directly (no poison `Result`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match Execution::current() {
            None => MutexGuard {
                lock: self,
                inner: Some(unpoison(self.inner.lock())),
                sched: None,
            },
            Some((exec, tid)) => {
                let id = self.token.resolve(&exec);
                exec.mutex_lock(tid, id, true);
                // The scheduler has granted exclusive ownership, so the
                // inner std lock is uncontended by construction.
                let g = unpoison(self.inner.lock());
                MutexGuard {
                    lock: self,
                    inner: Some(g),
                    sched: Some((exec, tid, id)),
                }
            }
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

/// RAII guard for [`Mutex`]; releasing it is a scheduler yield point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    sched: Option<(Arc<Execution>, usize, u64)>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((exec, tid, id)) = self.sched.take() {
            exec.mutex_unlock(tid, id);
        }
    }
}

/// Condition variable with lost-wakeup-detecting waits.
///
/// `wait_timeout` under the scheduler blocks like `wait`; the timeout
/// transition only fires when no other thread is runnable (quiescence), and
/// then sleeps the real remaining duration so wall-clock deadline checks in
/// the woken code observe an expired deadline.
pub struct Condvar {
    inner: StdCondvar,
    token: ObjToken,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad("Condvar { .. }")
    }
}

impl Condvar {
    /// Create a new shim condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
            token: ObjToken::new(),
        }
    }

    /// Block until notified, releasing and reacquiring the guard's mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    /// Block until notified or the timeout fires. The boolean is `true`
    /// when the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        self.wait_inner(guard, Some(timeout))
    }

    /// Wait until `condition` returns false (std `wait_while` semantics).
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wait until `condition` returns false or `timeout` elapses. The
    /// boolean is `true` when the deadline passed with the condition still
    /// holding (std `WaitTimeoutResult::timed_out` semantics).
    pub fn wait_timeout_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
        mut condition: F,
    ) -> (MutexGuard<'a, T>, bool)
    where
        F: FnMut(&mut T) -> bool,
    {
        let deadline = Instant::now() + timeout;
        loop {
            if !condition(&mut guard) {
                return (guard, false);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return (guard, true);
            }
            let (g, _) = self.wait_timeout(guard, remaining);
            guard = g;
        }
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, bool) {
        match guard.sched.take() {
            None => {
                let inner = guard.inner.take().expect("guard already released");
                let lock = guard.lock;
                drop(guard);
                match timeout {
                    None => {
                        // gp-lint: allow(L7, shim wait primitive: predicate re-check loops live at call sites)
                        let g = unpoison(self.inner.wait(inner));
                        (
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                sched: None,
                            },
                            false,
                        )
                    }
                    Some(d) => {
                        // gp-lint: allow(L7, shim wait primitive: predicate re-check loops live at call sites)
                        let (g, res) = unpoison(self.inner.wait_timeout(inner, d));
                        (
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                sched: None,
                            },
                            res.timed_out(),
                        )
                    }
                }
            }
            Some((exec, tid, mutex_id)) => {
                let cv_id = self.token.resolve(&exec);
                guard.inner.take();
                let lock = guard.lock;
                drop(guard);
                let fired = exec.condvar_wait(tid, cv_id, mutex_id, timeout);
                let g = unpoison(lock.inner.lock());
                (
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        sched: Some((exec, tid, mutex_id)),
                    },
                    fired,
                )
            }
        }
    }

    /// Wake one waiter (scheduler yield point).
    pub fn notify_one(&self) {
        match Execution::current() {
            None => self.inner.notify_one(),
            Some((exec, tid)) => {
                let cv_id = self.token.resolve(&exec);
                exec.condvar_notify(tid, cv_id, false);
            }
        }
    }

    /// Wake all waiters (scheduler yield point).
    pub fn notify_all(&self) {
        match Execution::current() {
            None => self.inner.notify_all(),
            Some((exec, tid)) => {
                let cv_id = self.token.resolve(&exec);
                exec.condvar_notify(tid, cv_id, true);
            }
        }
    }
}

fn maybe_yield() {
    if let Some((exec, tid)) = Execution::current() {
        exec.yield_point(tid);
    }
}

/// Instrumented `AtomicU64`: every access is a scheduler yield point, so
/// the explorer interleaves around it.
pub struct AtomicU64 {
    v: std::sync::atomic::AtomicU64,
}

impl Default for AtomicU64 {
    fn default() -> Self {
        AtomicU64::new(0)
    }
}

impl AtomicU64 {
    /// Create a new atomic with `value`.
    pub const fn new(value: u64) -> Self {
        AtomicU64 {
            v: std::sync::atomic::AtomicU64::new(value),
        }
    }

    /// Load the value.
    pub fn load(&self, order: Ordering) -> u64 {
        maybe_yield();
        self.v.load(order)
    }

    /// Store `value`.
    pub fn store(&self, value: u64, order: Ordering) {
        maybe_yield();
        self.v.store(value, order)
    }

    /// Add and return the previous value.
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        maybe_yield();
        self.v.fetch_add(value, order)
    }

    /// Max and return the previous value.
    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        maybe_yield();
        self.v.fetch_max(value, order)
    }

    /// Swap and return the previous value.
    pub fn swap(&self, value: u64, order: Ordering) -> u64 {
        maybe_yield();
        self.v.swap(value, order)
    }
}

/// Instrumented `AtomicBool`: every access is a scheduler yield point.
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
}

impl Default for AtomicBool {
    fn default() -> Self {
        AtomicBool::new(false)
    }
}

impl AtomicBool {
    /// Create a new atomic with `value`.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            v: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Load the value.
    pub fn load(&self, order: Ordering) -> bool {
        maybe_yield();
        self.v.load(order)
    }

    /// Store `value`.
    pub fn store(&self, value: bool, order: Ordering) {
        maybe_yield();
        self.v.store(value, order)
    }

    /// Swap and return the previous value.
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        maybe_yield();
        self.v.swap(value, order)
    }
}

/// Scheduler-aware threading: spawn registers the thread with the active
/// execution; outside one it is a plain `std::thread::spawn`.
pub mod thread {
    use super::{unpoison, Execution};
    use std::panic;
    use std::sync::{Arc, Mutex as StdMutex};

    enum Inner<T> {
        Native(std::thread::JoinHandle<T>),
        Sched {
            exec: Arc<Execution>,
            tid: usize,
            result: Arc<StdMutex<Option<T>>>,
        },
    }

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and return its value. Panics from
        /// the thread propagate (under the scheduler they surface as model
        /// failures with a schedule trace).
        pub fn join(self) -> T {
            match self.inner {
                Inner::Native(h) => match h.join() {
                    Ok(v) => v,
                    Err(payload) => panic::resume_unwind(payload),
                },
                Inner::Sched { exec, tid, result } => {
                    let (_, me) =
                        Execution::current().expect("joining a sched thread outside its execution");
                    exec.join_thread(me, tid);
                    match unpoison(result.lock()).take() {
                        Some(v) => v,
                        // The child unwound without producing a value: the
                        // execution is halting, so unwind this thread too.
                        None => panic::panic_any(crate::exec::HaltToken),
                    }
                }
            }
        }
    }

    /// Spawn a thread. Inside an execution the new thread becomes part of
    /// the explored schedule; the spawn itself is a yield point.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match Execution::current() {
            None => JoinHandle {
                inner: Inner::Native(std::thread::spawn(f)),
            },
            Some((exec, tid)) => {
                let result = Arc::new(StdMutex::new(None));
                let slot = Arc::clone(&result);
                let child = exec.spawn_thread(tid, move || {
                    let v = f();
                    *unpoison(slot.lock()) = Some(v);
                });
                JoinHandle {
                    inner: Inner::Sched {
                        exec,
                        tid: child,
                        result,
                    },
                }
            }
        }
    }

    /// Cooperative yield: a pure scheduling point under the explorer, a
    /// `std::thread::yield_now` otherwise.
    pub fn yield_now() {
        match Execution::current() {
            None => std::thread::yield_now(),
            Some((exec, tid)) => exec.yield_point(tid),
        }
    }
}
