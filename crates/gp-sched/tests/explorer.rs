//! gp-sched self-tests: the explorer must find seeded concurrency bugs,
//! produce replayable traces, and terminate on correct models.

use gp_sched::{shim, thread, Explorer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Extract the comma-separated schedule trace from a failure panic message.
fn trace_of(message: &str) -> String {
    let marker = "schedule trace: ";
    let start = message
        .find(marker)
        .expect("failure message carries a schedule trace")
        + marker.len();
    let rest = &message[start..];
    rest.lines().next().unwrap().trim().to_string()
}

fn panic_message<F: FnOnce() + Send + Sync + 'static>(f: F) -> String {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("expected a model failure");
    if let Some(s) = err.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = err.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        panic!("non-string panic payload")
    }
}

#[test]
fn mutex_counter_is_exhaustively_correct() {
    let exploration = Explorer::new().explore(|| {
        let m = Arc::new(shim::Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || *m2.lock() += 1);
        *m.lock() += 1;
        t.join();
        assert_eq!(*m.lock(), 2);
    });
    assert!(
        exploration.schedules > 1,
        "two racing lockers must branch the schedule"
    );
    assert_eq!(exploration.pruned, 0);
}

#[test]
fn atomic_rmw_is_exhaustively_correct() {
    let exploration = Explorer::new().explore(|| {
        let a = Arc::new(shim::AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || a2.fetch_add(1, Ordering::SeqCst));
        a.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    assert!(exploration.schedules > 1);
}

/// A load/store "increment" loses updates under preemption. The explorer
/// must catch the seeded bug, and the trace must replay to the same
/// failure; with a preemption bound of 0 (pure co-operative scheduling)
/// the bug is unreachable and exploration completes clean.
#[test]
fn seeded_lost_update_is_caught_and_replayable() {
    fn model() {
        let a = Arc::new(shim::AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    }

    let message = panic_message(|| {
        Explorer::new().explore(model);
    });
    assert!(
        message.contains("lost update"),
        "unexpected failure: {message}"
    );
    let trace = trace_of(&message);

    let replayed = panic_message(move || {
        Explorer::new().replay(&trace, model);
    });
    assert!(
        replayed.contains("lost update"),
        "replay must reproduce: {replayed}"
    );

    // Co-operative-only scheduling cannot interleave mid-sequence.
    let exploration = Explorer::new().preemption_bound(Some(0)).explore(model);
    assert_eq!(exploration.pruned, 0);
}

/// The acceptance fixture: a waiter that checks its flag outside the lock
/// and then parks in an untimed wait. The schedule "check, then notify,
/// then park" loses the wakeup forever; the explorer must report a lost
/// wakeup with a replayable trace.
#[test]
fn seeded_lost_wakeup_is_caught_with_replayable_trace() {
    fn model() {
        let state = Arc::new((shim::Mutex::new(()), shim::Condvar::new()));
        let done = Arc::new(shim::AtomicBool::new(false));
        let (state2, done2) = (Arc::clone(&state), Arc::clone(&done));
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*state2;
            let guard = lock.lock();
            // BUG (deliberate): no predicate — a notify that lands before
            // this park is lost and the wait never returns.
            let _guard = cv.wait(guard);
            done2.store(true, Ordering::SeqCst);
        });
        let (_, cv) = &*state;
        cv.notify_one();
        waiter.join();
        assert!(done.load(Ordering::SeqCst));
    }

    let message = panic_message(|| {
        Explorer::new().explore(model);
    });
    assert!(
        message.contains("lost wakeup"),
        "expected lost-wakeup diagnosis, got: {message}"
    );
    let trace = trace_of(&message);
    let replayed = panic_message(move || {
        Explorer::new().replay(&trace, model);
    });
    assert!(
        replayed.contains("lost wakeup"),
        "replay must reproduce: {replayed}"
    );
}

/// Classic ABBA ordering deadlock must be diagnosed (as deadlock, not lost
/// wakeup) with a trace.
#[test]
fn abba_deadlock_is_caught() {
    let message = panic_message(|| {
        Explorer::new().explore(|| {
            let a = Arc::new(shim::Mutex::new(()));
            let b = Arc::new(shim::Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _g1 = b2.lock();
                let _g2 = a2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop(_g2);
            drop(_g1);
            t.join();
        });
    });
    assert!(
        message.contains("deadlock"),
        "unexpected failure: {message}"
    );
    assert!(
        message.contains("schedule trace"),
        "trace missing: {message}"
    );
}

/// A timed wait with no notifier must take the quiescent-timeout
/// transition, not be reported as a deadlock.
#[test]
fn wait_timeout_fires_at_quiescence() {
    let exploration = Explorer::new().explore(|| {
        let m = shim::Mutex::new(());
        let cv = shim::Condvar::new();
        let g = m.lock();
        let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(timed_out, "no notifier exists, the wait must time out");
    });
    assert_eq!(exploration.pruned, 0);
}

/// wait_timeout_while with a notifier: correct handoff in every schedule.
#[test]
fn wait_timeout_while_observes_notify() {
    Explorer::new().explore(|| {
        let state = Arc::new((shim::Mutex::new(0u64), shim::Condvar::new()));
        let state2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (lock, cv) = &*state2;
            *lock.lock() = 7;
            cv.notify_all();
        });
        let (lock, cv) = &*state;
        let guard = lock.lock();
        let (guard, timed_out) =
            cv.wait_timeout_while(guard, Duration::from_millis(5), |v| *v == 0);
        assert!(
            !timed_out,
            "the writer always runs, so the condition must be met"
        );
        assert_eq!(*guard, 7);
        drop(guard);
        t.join();
    });
}

/// Random walks find the seeded lost update too, and report a scripted
/// trace that replays.
#[test]
fn random_walks_find_seeded_bug() {
    fn model() {
        let a = Arc::new(shim::AtomicU64::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    }
    let message = panic_message(|| {
        Explorer::new().random_walks(0xfeed_beef, 512, model);
    });
    assert!(
        message.contains("lost update"),
        "unexpected failure: {message}"
    );
    let trace = trace_of(&message);
    let replayed = panic_message(move || {
        Explorer::new().replay(&trace, model);
    });
    assert!(replayed.contains("lost update"));
}

/// Shims degrade to plain std primitives outside an execution.
#[test]
fn shims_work_without_an_execution() {
    let m = Arc::new(shim::Mutex::new(0u64));
    let cv = Arc::new(shim::Condvar::new());
    let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
    let t = thread::spawn(move || {
        *m2.lock() = 5;
        cv2.notify_all();
    });
    let guard = m.lock();
    let (guard, _) = cv.wait_timeout_while(guard, Duration::from_secs(5), |v| *v == 0);
    assert_eq!(*guard, 5);
    drop(guard);
    t.join();

    let a = shim::AtomicU64::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    assert_eq!(a.load(Ordering::SeqCst), 3);
}

/// Three threads under the default preemption bound: exploration stays
/// bounded and terminates.
#[test]
fn three_thread_exploration_terminates() {
    let exploration = Explorer::new().max_schedules(100_000).explore(|| {
        let m = Arc::new(shim::Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || *m.lock() += 1)
            })
            .collect();
        *m.lock() += 1;
        for h in handles {
            h.join();
        }
        assert_eq!(*m.lock(), 3);
    });
    assert!(exploration.schedules >= 3);
}
