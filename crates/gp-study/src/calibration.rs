//! Click re-entry accuracy calibration.
//!
//! The paper notes that "users in the collected dataset were very accurate
//! in targeting their click-points" (footnote 3) — most login clicks fall
//! well inside even small tolerances, with a minority of sloppier attempts
//! producing the false-accept/false-reject phenomena of Tables 1 and 2.
//! [`ClickAccuracy`] models per-axis re-entry error as a two-component
//! Gaussian mixture (a tight component for careful clicks, a wide component
//! for sloppy ones), truncated to the image.
//!
//! The default parameters are chosen so that the share of logins within a
//! centered tolerance of 4 / 6 / 9 pixels is in the same regime as the
//! paper's data (roughly 70–95%), which is what drives the magnitudes of
//! Tables 1, 2 and Figures 7, 8.  `EXPERIMENTS.md` records the resulting
//! paper-vs-measured comparison.

use crate::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Two-component Gaussian mixture model of per-axis click re-entry error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClickAccuracy {
    /// Standard deviation (pixels) of the careful component.
    pub tight_sigma: f64,
    /// Standard deviation (pixels) of the sloppy component.
    pub sloppy_sigma: f64,
    /// Probability that a given login click uses the sloppy component.
    pub sloppy_fraction: f64,
}

impl Default for ClickAccuracy {
    fn default() -> Self {
        Self::study_default()
    }
}

impl ClickAccuracy {
    /// Calibrated default used by the synthetic field study.
    pub fn study_default() -> Self {
        Self {
            tight_sigma: 1.9,
            sloppy_sigma: 7.0,
            sloppy_fraction: 0.12,
        }
    }

    /// A perfectly accurate user (useful in tests).
    pub fn exact() -> Self {
        Self {
            tight_sigma: 0.0,
            sloppy_sigma: 0.0,
            sloppy_fraction: 0.0,
        }
    }

    /// Sample a signed per-axis re-entry error in pixels.
    pub fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let sigma = if rng.gen::<f64>() < self.sloppy_fraction {
            self.sloppy_sigma
        } else {
            self.tight_sigma
        };
        if sigma == 0.0 {
            0.0
        } else {
            rng::normal(rng, 0.0, sigma)
        }
    }

    /// Analytic probability that one axis' error is within `±t` pixels.
    pub fn axis_within(&self, t: f64) -> f64 {
        let phi = |t: f64, sigma: f64| -> f64 {
            if sigma == 0.0 {
                1.0
            } else {
                erf(t / (sigma * std::f64::consts::SQRT_2))
            }
        };
        (1.0 - self.sloppy_fraction) * phi(t, self.tight_sigma)
            + self.sloppy_fraction * phi(t, self.sloppy_sigma)
    }

    /// Analytic probability that a 2-D click lands within the centered
    /// tolerance square of half-width `t` (axes independent).
    pub fn within_centered_tolerance(&self, t: f64) -> f64 {
        // The two axes share the mixture component choice only if the user
        // is sloppy "as a whole"; we model the component per click, so both
        // axes use the same sigma.
        let phi = |sigma: f64| -> f64 {
            if sigma == 0.0 {
                1.0
            } else {
                erf(t / (sigma * std::f64::consts::SQRT_2))
            }
        };
        (1.0 - self.sloppy_fraction) * phi(self.tight_sigma).powi(2)
            + self.sloppy_fraction * phi(self.sloppy_sigma).powi(2)
    }

    /// Sample a 2-D error pair using one mixture component for both axes
    /// (matching [`within_centered_tolerance`](Self::within_centered_tolerance)).
    pub fn sample_error_2d<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let sigma = if rng.gen::<f64>() < self.sloppy_fraction {
            self.sloppy_sigma
        } else {
            self.tight_sigma
        };
        if sigma == 0.0 {
            (0.0, 0.0)
        } else {
            (rng::normal(rng, 0.0, sigma), rng::normal(rng, 0.0, sigma))
        }
    }
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max error
/// ≈ 1.5e-7) — sufficient for calibration arithmetic.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0) - 0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(2.0) - 0.9953223).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
    }

    #[test]
    fn exact_accuracy_never_errs() {
        let acc = ClickAccuracy::exact();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(acc.sample_error(&mut rng), 0.0);
            assert_eq!(acc.sample_error_2d(&mut rng), (0.0, 0.0));
        }
        assert_eq!(acc.within_centered_tolerance(0.5), 1.0);
    }

    #[test]
    fn default_accuracy_is_mostly_tight() {
        // Empirical acceptance within tolerance 6 should be close to the
        // analytic value and in the regime the paper reports (high, but not
        // 100%).
        let acc = ClickAccuracy::study_default();
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 40_000;
        let mut within6 = 0;
        let mut within9 = 0;
        for _ in 0..trials {
            let (ex, ey) = acc.sample_error_2d(&mut rng);
            if ex.abs() <= 6.0 && ey.abs() <= 6.0 {
                within6 += 1;
            }
            if ex.abs() <= 9.0 && ey.abs() <= 9.0 {
                within9 += 1;
            }
        }
        let frac6 = within6 as f64 / trials as f64;
        let frac9 = within9 as f64 / trials as f64;
        assert!((frac6 - acc.within_centered_tolerance(6.0)).abs() < 0.02);
        assert!((frac9 - acc.within_centered_tolerance(9.0)).abs() < 0.02);
        assert!(frac6 > 0.80 && frac6 < 0.99, "frac6 = {frac6}");
        assert!(frac9 > frac6);
    }

    #[test]
    fn within_tolerance_is_monotone_in_t() {
        let acc = ClickAccuracy::study_default();
        let mut last = 0.0;
        for t in [1.0, 2.0, 4.0, 6.0, 9.0, 15.0, 30.0] {
            let p = acc.within_centered_tolerance(t);
            assert!(p >= last);
            assert!(p <= 1.0);
            last = p;
        }
        assert!(last > 0.99);
    }
}
