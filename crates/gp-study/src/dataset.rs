//! Dataset model for (synthetic) user studies, with CSV persistence.
//!
//! A dataset is what the paper's §4 analysis consumes: a set of created
//! passwords (each a click sequence on a named image by a participant) and a
//! set of login attempts, each tied to the password it tried to re-enter.
//! Coordinates are stored in the clear — exactly like the instrumented,
//! non-hashing system used in the original field study — so that both
//! discretization schemes can be replayed over the same attempts.

use gp_geometry::Point;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One created password.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PasswordRecord {
    /// Participant identifier.
    pub user_id: u32,
    /// Name of the image the password was created on ("cars" / "pool").
    pub image: String,
    /// The original click-points, in order.
    pub clicks: Vec<Point>,
}

/// One login attempt against a previously created password.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoginRecord {
    /// Index into [`Dataset::passwords`] of the password being re-entered.
    pub password_index: usize,
    /// The attempted click-points, in order.
    pub clicks: Vec<Point>,
}

/// A complete study dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// All created passwords.
    pub passwords: Vec<PasswordRecord>,
    /// All login attempts.
    pub logins: Vec<LoginRecord>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of created passwords.
    pub fn password_count(&self) -> usize {
        self.passwords.len()
    }

    /// Number of recorded login attempts.
    pub fn login_count(&self) -> usize {
        self.logins.len()
    }

    /// Number of distinct participants.
    pub fn participant_count(&self) -> usize {
        self.passwords
            .iter()
            .map(|p| p.user_id)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// The distinct image names present, sorted.
    pub fn images(&self) -> Vec<String> {
        self.passwords
            .iter()
            .map(|p| p.image.clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Indices of passwords created on a given image.
    pub fn password_indices_for_image(&self, image: &str) -> Vec<usize> {
        self.passwords
            .iter()
            .enumerate()
            .filter(|(_, p)| p.image == image)
            .map(|(i, _)| i)
            .collect()
    }

    /// Login attempts against a given password.
    pub fn logins_for_password(&self, password_index: usize) -> Vec<&LoginRecord> {
        self.logins
            .iter()
            .filter(|l| l.password_index == password_index)
            .collect()
    }

    /// Login attempts whose target password was created on a given image.
    pub fn logins_for_image(&self, image: &str) -> Vec<&LoginRecord> {
        self.logins
            .iter()
            .filter(|l| self.passwords[l.password_index].image == image)
            .collect()
    }

    /// Serialize to a simple CSV format.
    ///
    /// Lines are either
    /// `password,<user_id>,<image>,<x1>,<y1>,…` or
    /// `login,<password_index>,<x1>,<y1>,…`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# gp-study dataset v1\n");
        for p in &self.passwords {
            out.push_str(&format!("password,{},{}", p.user_id, p.image));
            for c in &p.clicks {
                out.push_str(&format!(",{:.3},{:.3}", c.x, c.y));
            }
            out.push('\n');
        }
        for l in &self.logins {
            out.push_str(&format!("login,{}", l.password_index));
            for c in &l.clicks {
                out.push_str(&format!(",{:.3},{:.3}", c.x, c.y));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the CSV format produced by [`to_csv`](Self::to_csv).
    pub fn from_csv(contents: &str) -> Result<Self, String> {
        let mut dataset = Dataset::new();
        for (line_no, line) in contents.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}", line_no + 1);
            let fields: Vec<&str> = line.split(',').collect();
            match fields[0] {
                "password" => {
                    if fields.len() < 5 || !(fields.len() - 3).is_multiple_of(2) {
                        return Err(err("malformed password line"));
                    }
                    let user_id: u32 = fields[1].parse().map_err(|_| err("bad user id"))?;
                    let image = fields[2].to_string();
                    let clicks = parse_clicks(&fields[3..]).map_err(|m| err(&m))?;
                    dataset.passwords.push(PasswordRecord {
                        user_id,
                        image,
                        clicks,
                    });
                }
                "login" => {
                    if fields.len() < 4 || !(fields.len() - 2).is_multiple_of(2) {
                        return Err(err("malformed login line"));
                    }
                    let password_index: usize =
                        fields[1].parse().map_err(|_| err("bad password index"))?;
                    let clicks = parse_clicks(&fields[2..]).map_err(|m| err(&m))?;
                    dataset.logins.push(LoginRecord {
                        password_index,
                        clicks,
                    });
                }
                other => return Err(err(&format!("unknown record kind {other:?}"))),
            }
        }
        // Validate referential integrity.
        for (i, l) in dataset.logins.iter().enumerate() {
            if l.password_index >= dataset.passwords.len() {
                return Err(format!(
                    "login #{i} references password {} but only {} passwords exist",
                    l.password_index,
                    dataset.passwords.len()
                ));
            }
        }
        Ok(dataset)
    }
}

fn parse_clicks(fields: &[&str]) -> Result<Vec<Point>, String> {
    let mut clicks = Vec::with_capacity(fields.len() / 2);
    for pair in fields.chunks(2) {
        let x: f64 = pair[0]
            .parse()
            .map_err(|_| "bad x coordinate".to_string())?;
        let y: f64 = pair[1]
            .parse()
            .map_err(|_| "bad y coordinate".to_string())?;
        if !x.is_finite() || !y.is_finite() {
            return Err("non-finite coordinate".to_string());
        }
        clicks.push(Point::new(x, y));
    }
    Ok(clicks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset {
            passwords: vec![
                PasswordRecord {
                    user_id: 1,
                    image: "cars".into(),
                    clicks: vec![Point::new(1.0, 2.0), Point::new(3.5, 4.25)],
                },
                PasswordRecord {
                    user_id: 2,
                    image: "pool".into(),
                    clicks: vec![Point::new(10.0, 20.0), Point::new(30.0, 40.0)],
                },
                PasswordRecord {
                    user_id: 1,
                    image: "cars".into(),
                    clicks: vec![Point::new(5.0, 6.0), Point::new(7.0, 8.0)],
                },
            ],
            logins: vec![
                LoginRecord {
                    password_index: 0,
                    clicks: vec![Point::new(1.5, 2.5), Point::new(3.0, 4.0)],
                },
                LoginRecord {
                    password_index: 2,
                    clicks: vec![Point::new(5.5, 6.5), Point::new(7.5, 8.5)],
                },
            ],
        }
    }

    #[test]
    fn counting_helpers() {
        let d = sample();
        assert_eq!(d.password_count(), 3);
        assert_eq!(d.login_count(), 2);
        assert_eq!(d.participant_count(), 2);
        assert_eq!(d.images(), vec!["cars".to_string(), "pool".to_string()]);
        assert_eq!(d.password_indices_for_image("cars"), vec![0, 2]);
        assert_eq!(d.logins_for_password(0).len(), 1);
        assert_eq!(d.logins_for_password(1).len(), 0);
        assert_eq!(d.logins_for_image("cars").len(), 2);
        assert_eq!(d.logins_for_image("pool").len(), 0);
    }

    #[test]
    fn csv_round_trip() {
        let d = sample();
        let csv = d.to_csv();
        let parsed = Dataset::from_csv(&csv).unwrap();
        assert_eq!(parsed.password_count(), d.password_count());
        assert_eq!(parsed.login_count(), d.login_count());
        // Coordinates survive to within the 3-decimal precision of the format.
        for (a, b) in parsed.passwords.iter().zip(&d.passwords) {
            assert_eq!(a.user_id, b.user_id);
            assert_eq!(a.image, b.image);
            for (pa, pb) in a.clicks.iter().zip(&b.clicks) {
                assert!((pa.x - pb.x).abs() < 1e-3);
                assert!((pa.y - pb.y).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        assert!(Dataset::from_csv("password,1,cars,1.0").is_err()); // odd coords
        assert!(Dataset::from_csv("password,x,cars,1.0,2.0").is_err());
        assert!(Dataset::from_csv("login,0,1.0").is_err());
        assert!(Dataset::from_csv("frobnicate,1,2").is_err());
        assert!(Dataset::from_csv("login,7,1.0,2.0").is_err()); // dangling reference
        assert!(Dataset::from_csv("password,1,cars,NaN,2.0").is_err());
    }

    #[test]
    fn csv_skips_comments_and_blank_lines() {
        let d = Dataset::from_csv("# header\n\npassword,1,cars,1.0,2.0\n").unwrap();
        assert_eq!(d.password_count(), 1);
        assert_eq!(d.login_count(), 0);
    }

    #[test]
    fn empty_dataset_round_trips() {
        let d = Dataset::new();
        assert_eq!(Dataset::from_csv(&d.to_csv()).unwrap(), d);
    }
}
