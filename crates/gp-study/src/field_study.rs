//! Synthetic reproduction of the PassPoints **field study** the paper's
//! usability analysis is based on (§4): 191 participants, 481 created
//! passwords and 3339 login attempts on two 451×331 images.

use crate::dataset::{Dataset, LoginRecord, PasswordRecord};
use crate::image::SyntheticImage;
use crate::user_model::UserModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic field study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldStudyConfig {
    /// Number of participants (paper: 191).
    pub participants: u32,
    /// Total number of created passwords (paper: 481).
    pub total_passwords: usize,
    /// Total number of login attempts (paper: 3339).
    pub total_logins: usize,
    /// Behavioural model of the participants.
    pub user_model: UserModel,
    /// RNG seed — the dataset is fully determined by the configuration.
    pub seed: u64,
}

impl Default for FieldStudyConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl FieldStudyConfig {
    /// The paper's dataset dimensions.
    pub fn paper_scale() -> Self {
        Self {
            participants: 191,
            total_passwords: 481,
            total_logins: 3339,
            user_model: UserModel::study_default(),
            seed: 2008,
        }
    }

    /// A reduced-size configuration for fast tests (same structure, ~10% of
    /// the volume).
    pub fn test_scale() -> Self {
        Self {
            participants: 20,
            total_passwords: 48,
            total_logins: 333,
            user_model: UserModel::study_default(),
            seed: 7,
        }
    }

    /// Generate the synthetic dataset on the standard "cars"/"pool" image
    /// pair.  Roughly half the participants use each image, passwords are
    /// spread round-robin over participants, and logins round-robin over
    /// passwords — matching the aggregate shape reported in the paper
    /// (≈2.5 passwords per participant, ≈7 logins per password).
    pub fn generate(&self) -> Dataset {
        self.generate_on(&SyntheticImage::study_pair())
    }

    /// Generate the synthetic dataset on an explicit set of images.
    pub fn generate_on(&self, images: &[SyntheticImage]) -> Dataset {
        assert!(!images.is_empty(), "at least one image is required");
        assert!(
            self.participants > 0,
            "at least one participant is required"
        );
        assert!(
            self.total_passwords > 0,
            "at least one password is required"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dataset = Dataset::new();

        // Assign participants to images: first half to images[0], etc.
        let image_of_user = |user: u32| -> &SyntheticImage {
            let idx = (user as usize * images.len()) / self.participants as usize;
            &images[idx.min(images.len() - 1)]
        };

        // Passwords round-robin over participants.
        for pw_index in 0..self.total_passwords {
            let user_id = (pw_index as u32) % self.participants;
            let image = image_of_user(user_id);
            let clicks = self.user_model.choose_password(&mut rng, image);
            dataset.passwords.push(PasswordRecord {
                user_id,
                image: image.name.clone(),
                clicks,
            });
        }

        // Logins round-robin over passwords.
        for login_index in 0..self.total_logins {
            let password_index = login_index % self.total_passwords;
            let record = &dataset.passwords[password_index];
            let image = images
                .iter()
                .find(|i| i.name == record.image)
                .expect("image of password exists");
            let clicks = self.user_model.reenter(&mut rng, image, &record.clicks);
            dataset.logins.push(LoginRecord {
                password_index,
                clicks,
            });
        }

        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_reported_dataset_shape() {
        let config = FieldStudyConfig::paper_scale();
        assert_eq!(config.participants, 191);
        assert_eq!(config.total_passwords, 481);
        assert_eq!(config.total_logins, 3339);
        let dataset = config.generate();
        assert_eq!(dataset.password_count(), 481);
        assert_eq!(dataset.login_count(), 3339);
        assert_eq!(dataset.participant_count(), 191);
        let images = dataset.images();
        assert_eq!(images, vec!["cars".to_string(), "pool".to_string()]);
        // Roughly half the passwords on each image.
        let cars = dataset.password_indices_for_image("cars").len();
        let pool = dataset.password_indices_for_image("pool").len();
        assert_eq!(cars + pool, 481);
        assert!(
            (cars as i64 - pool as i64).abs() < 100,
            "cars={cars} pool={pool}"
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = FieldStudyConfig::test_scale().generate();
        let b = FieldStudyConfig::test_scale().generate();
        assert_eq!(a, b);
        let mut other = FieldStudyConfig::test_scale();
        other.seed += 1;
        assert_ne!(other.generate(), a);
    }

    #[test]
    fn every_login_references_a_valid_password_on_the_same_image() {
        let dataset = FieldStudyConfig::test_scale().generate();
        for login in &dataset.logins {
            assert!(login.password_index < dataset.password_count());
            let pw = &dataset.passwords[login.password_index];
            assert_eq!(login.clicks.len(), pw.clicks.len());
        }
    }

    #[test]
    fn clicks_are_inside_the_study_image() {
        let dataset = FieldStudyConfig::test_scale().generate();
        let dims = gp_geometry::ImageDims::STUDY;
        for pw in &dataset.passwords {
            for c in &pw.clicks {
                assert!(dims.contains_point(c));
            }
        }
        for l in &dataset.logins {
            for c in &l.clicks {
                assert!(dims.contains_point(c));
            }
        }
    }

    #[test]
    fn most_logins_are_accurate_re_entries() {
        // Calibration sanity: the majority of login attempts fall within 9
        // pixels (Chebyshev) of every original click.
        let dataset = FieldStudyConfig::test_scale().generate();
        let mut accurate = 0;
        for login in &dataset.logins {
            let original = &dataset.passwords[login.password_index];
            if login
                .clicks
                .iter()
                .zip(&original.clicks)
                .all(|(a, o)| a.chebyshev(o) <= 9.0)
            {
                accurate += 1;
            }
        }
        let frac = accurate as f64 / dataset.login_count() as f64;
        assert!(frac > 0.5 && frac < 1.0, "accurate fraction {frac}");
    }

    #[test]
    fn csv_round_trip_of_a_generated_dataset() {
        let dataset = FieldStudyConfig::test_scale().generate();
        let parsed = Dataset::from_csv(&dataset.to_csv()).unwrap();
        assert_eq!(parsed.password_count(), dataset.password_count());
        assert_eq!(parsed.login_count(), dataset.login_count());
    }
}
