//! Synthetic study images with hotspots.
//!
//! The real studies used two photographs (Figures 3 and 4 of the paper).
//! What matters for the evaluation is not the pixels but the *click-point
//! distribution* the photographs induce: salient objects become hotspots
//! that many users pick, which is exactly what human-seeded dictionary
//! attacks exploit (Thorpe & van Oorschot, Dirik et al.).  A
//! [`SyntheticImage`] is therefore a named set of weighted hotspots; the
//! user model samples click-points from it.

use crate::rng;
use gp_geometry::{ImageDims, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A salient region of an image that attracts click-points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Center of the salient object.
    pub center: Point,
    /// Relative popularity (higher = chosen by more users).
    pub weight: f64,
    /// Spatial spread (standard deviation, pixels) of clicks around the
    /// center.
    pub spread: f64,
}

/// A synthetic study image: dimensions plus a hotspot map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticImage {
    /// Image name ("cars", "pool", …) — also the seed for its hotspot map.
    pub name: String,
    /// Pixel dimensions.
    pub dims: ImageDims,
    /// Salient regions.
    pub hotspots: Vec<Hotspot>,
}

impl SyntheticImage {
    /// Deterministically generate an image's hotspot map from its name.
    ///
    /// The same name always yields the same hotspots, so "cars" and "pool"
    /// are stable, distinct workloads across runs and machines.
    pub fn from_name(name: &str, dims: ImageDims, hotspot_count: usize) -> Self {
        assert!(hotspot_count > 0, "an image needs at least one hotspot");
        let seed = gp_crypto_seed(name);
        let mut rng = StdRng::seed_from_u64(seed);
        let margin = 15.0;
        let hotspots = (0..hotspot_count)
            .map(|_| Hotspot {
                center: Point::new(
                    rng.gen_range(margin..dims.width as f64 - margin),
                    rng.gen_range(margin..dims.height as f64 - margin),
                ),
                // Zipf-ish popularity: a few very popular objects, many
                // marginal ones.
                weight: 1.0 / (1.0 + rng.gen_range(0.0..9.0)),
                spread: rng.gen_range(2.0..6.0),
            })
            .collect();
        Self {
            name: name.to_string(),
            dims,
            hotspots,
        }
    }

    /// The "Cars" stand-in image used throughout the reproduction
    /// (451×331, 30 salient objects).
    pub fn cars() -> Self {
        Self::from_name("cars", ImageDims::STUDY, 30)
    }

    /// The "Pool" stand-in image (451×331, 30 salient objects).
    pub fn pool() -> Self {
        Self::from_name("pool", ImageDims::STUDY, 30)
    }

    /// Both study images, in the order the paper lists them.
    pub fn study_pair() -> [SyntheticImage; 2] {
        [Self::cars(), Self::pool()]
    }

    /// Sample a click-point target: with probability `hotspot_affinity` the
    /// click lands near a (popularity-weighted) hotspot, otherwise uniformly
    /// on the image.  Points are clamped to the image and rounded to whole
    /// pixels — mouse clicks in the real studies are pixel coordinates.
    pub fn sample_click<R: Rng + ?Sized>(&self, rng: &mut R, hotspot_affinity: f64) -> Point {
        let affinity = hotspot_affinity.clamp(0.0, 1.0);
        let raw = if rng.gen::<f64>() < affinity {
            let weights: Vec<f64> = self.hotspots.iter().map(|h| h.weight).collect();
            let h = &self.hotspots[rng::weighted_index(rng, &weights)];
            Point::new(
                rng::normal(rng, h.center.x, h.spread),
                rng::normal(rng, h.center.y, h.spread),
            )
        } else {
            Point::new(
                rng.gen_range(0.0..self.dims.width as f64 - 1.0),
                rng.gen_range(0.0..self.dims.height as f64 - 1.0),
            )
        };
        self.snap_to_pixel(&raw)
    }

    /// Clamp a point into the image and round it to a whole-pixel
    /// coordinate (the form in which click data is actually recorded).
    pub fn snap_to_pixel(&self, p: &Point) -> Point {
        let clamped = self.dims.clamp_point(p);
        self.dims
            .clamp_point(&Point::new(clamped.x.round(), clamped.y.round()))
    }

    /// The hotspot nearest to a point, with its distance.
    pub fn nearest_hotspot(&self, p: &Point) -> (&Hotspot, f64) {
        let mut best = &self.hotspots[0];
        let mut best_d = f64::INFINITY;
        for h in &self.hotspots {
            let d = h.center.euclidean(p);
            if d < best_d {
                best_d = d;
                best = h;
            }
        }
        (best, best_d)
    }
}

/// Derive a 64-bit seed from an image name (stable across platforms).
fn gp_crypto_seed(name: &str) -> u64 {
    // FNV-1a, sufficient for seeding and dependency-free.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_generation_is_deterministic() {
        assert_eq!(SyntheticImage::cars(), SyntheticImage::cars());
        assert_eq!(SyntheticImage::pool(), SyntheticImage::pool());
        assert_ne!(SyntheticImage::cars(), SyntheticImage::pool());
    }

    #[test]
    fn hotspots_are_inside_the_image() {
        for image in SyntheticImage::study_pair() {
            assert_eq!(image.hotspots.len(), 30);
            for h in &image.hotspots {
                assert!(image.dims.contains_point(&h.center), "{:?}", h.center);
                assert!(h.weight > 0.0);
                assert!(h.spread > 0.0);
            }
        }
    }

    #[test]
    fn sampled_clicks_are_inside_the_image() {
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let p = image.sample_click(&mut rng, 0.8);
            assert!(image.dims.contains_point(&p), "{p}");
        }
    }

    #[test]
    fn high_affinity_clicks_cluster_near_hotspots() {
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(10);
        let mut near = |affinity: f64| -> f64 {
            let mut count = 0;
            let trials = 3_000;
            for _ in 0..trials {
                let p = image.sample_click(&mut rng, affinity);
                let (_, d) = image.nearest_hotspot(&p);
                if d <= 15.0 {
                    count += 1;
                }
            }
            count as f64 / trials as f64
        };
        let clustered = near(1.0);
        let uniform = near(0.0);
        assert!(
            clustered > uniform + 0.3,
            "hotspot affinity should concentrate clicks: {clustered:.2} vs {uniform:.2}"
        );
    }

    #[test]
    fn nearest_hotspot_returns_minimum_distance() {
        let image = SyntheticImage::pool();
        let p = image.hotspots[3].center;
        let (h, d) = image.nearest_hotspot(&p);
        assert_eq!(h.center, p);
        assert_eq!(d, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one hotspot")]
    fn zero_hotspots_rejected() {
        SyntheticImage::from_name("empty", ImageDims::STUDY, 0);
    }
}
