//! Synthetic reproduction of the earlier **lab study** whose passwords seed
//! the attack dictionaries (§5.1): 30 passwords per image.
//!
//! The lab participants are an *independent* population from the field
//! study (different people, same images), which is exactly what makes the
//! attack "human-seeded": hotspots shared across populations let passwords
//! harvested from one group crack passwords of another.

use crate::dataset::{Dataset, PasswordRecord};
use crate::image::SyntheticImage;
use crate::user_model::UserModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic lab study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabStudyConfig {
    /// Number of passwords collected per image (paper: 30).
    pub passwords_per_image: usize,
    /// Behavioural model of the lab participants.
    pub user_model: UserModel,
    /// RNG seed — distinct from the field-study seed so the populations are
    /// independent.
    pub seed: u64,
}

impl Default for LabStudyConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl LabStudyConfig {
    /// The paper's dictionary source: 30 passwords per image.
    pub fn paper_scale() -> Self {
        Self {
            passwords_per_image: 30,
            user_model: UserModel::study_default(),
            seed: 2007,
        }
    }

    /// Generate lab passwords for the standard image pair.
    pub fn generate(&self) -> Dataset {
        self.generate_on(&SyntheticImage::study_pair())
    }

    /// Generate lab passwords for an explicit set of images.  The dataset
    /// contains passwords only (the lab study's login attempts are not used
    /// by the paper's attack analysis).
    pub fn generate_on(&self, images: &[SyntheticImage]) -> Dataset {
        assert!(!images.is_empty(), "at least one image is required");
        assert!(
            self.passwords_per_image > 0,
            "need at least one password per image"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dataset = Dataset::new();
        let mut user_id = 0u32;
        for image in images {
            for _ in 0..self.passwords_per_image {
                let clicks = self.user_model.choose_password(&mut rng, image);
                dataset.passwords.push(PasswordRecord {
                    user_id,
                    image: image.name.clone(),
                    clicks,
                });
                user_id += 1;
            }
        }
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_thirty_passwords_per_image() {
        let dataset = LabStudyConfig::paper_scale().generate();
        assert_eq!(dataset.password_count(), 60);
        assert_eq!(dataset.login_count(), 0);
        assert_eq!(dataset.password_indices_for_image("cars").len(), 30);
        assert_eq!(dataset.password_indices_for_image("pool").len(), 30);
    }

    #[test]
    fn lab_population_is_independent_of_field_population() {
        let lab = LabStudyConfig::paper_scale().generate();
        let field = crate::field_study::FieldStudyConfig::paper_scale().generate();
        // Not equal, and no password identical between the two datasets.
        assert_ne!(lab.passwords, field.passwords);
        for l in &lab.passwords {
            for f in &field.passwords {
                assert_ne!(l.clicks, f.clicks);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            LabStudyConfig::paper_scale().generate(),
            LabStudyConfig::paper_scale().generate()
        );
    }

    #[test]
    fn shared_hotspots_create_cross_population_overlap() {
        // The premise of the human-seeded attack: lab click-points often
        // land within tolerance of field click-points on the same image.
        let lab = LabStudyConfig::paper_scale().generate();
        let field = crate::field_study::FieldStudyConfig::paper_scale().generate();
        let mut overlapping_field_clicks = 0usize;
        let mut total_field_clicks = 0usize;
        for image in ["cars", "pool"] {
            let lab_clicks: Vec<_> = lab
                .password_indices_for_image(image)
                .into_iter()
                .flat_map(|i| lab.passwords[i].clicks.clone())
                .collect();
            for idx in field.password_indices_for_image(image) {
                for c in &field.passwords[idx].clicks {
                    total_field_clicks += 1;
                    if lab_clicks.iter().any(|l| l.chebyshev(c) <= 9.0) {
                        overlapping_field_clicks += 1;
                    }
                }
            }
        }
        let frac = overlapping_field_clicks as f64 / total_field_clicks as f64;
        assert!(
            frac > 0.3,
            "expected substantial hotspot-driven overlap between populations, got {frac:.3}"
        );
    }
}
