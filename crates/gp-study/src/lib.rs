//! Synthetic user-study simulator.
//!
//! The paper's evaluation replays data from two real user studies of
//! PassPoints:
//!
//! * a **field study** with 191 participants, 481 created passwords and
//!   3339 recorded login attempts on two 451×331-pixel images ("Cars" and
//!   "Pool"), and
//! * an earlier **lab study** providing 30 passwords per image, from which
//!   the human-seeded attack dictionaries are built.
//!
//! Those datasets are not publicly available, so this crate provides the
//! closest synthetic equivalent (documented as a substitution in
//! `DESIGN.md`):
//!
//! * [`image`] — a parametric [`SyntheticImage`]
//!   with named hotspots standing in for the salient objects of the real
//!   photographs; the "cars" and "pool" images are seeded deterministically
//!   from their names.
//! * [`user_model`] — a [`UserModel`] describing how
//!   participants choose click-points (hotspot-biased, minimum separation)
//!   and how accurately they re-target them at login (a mixture of a tight
//!   and a sloppy truncated Gaussian, calibrated in [`calibration`]).
//! * [`field_study`] / [`lab_study`] — generators reproducing the shape of
//!   the two datasets (participant counts, passwords per participant,
//!   logins per password).
//! * [`dataset`] — the dataset model plus a line-oriented CSV
//!   serialization, so experiments can be re-run on a frozen dataset.
//! * [`stats`] — summary statistics used by the analysis crate and by
//!   calibration tests.
//!
//! The replay pipeline downstream of the data (discretize → hash → compare)
//! is identical to what the paper ran on real data; only the click
//! coordinates are synthetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dataset;
pub mod field_study;
pub mod image;
pub mod lab_study;
pub mod rng;
pub mod stats;
pub mod user_model;

pub use calibration::ClickAccuracy;
pub use dataset::{Dataset, LoginRecord, PasswordRecord};
pub use field_study::FieldStudyConfig;
pub use image::{Hotspot, SyntheticImage};
pub use lab_study::LabStudyConfig;
pub use user_model::UserModel;
