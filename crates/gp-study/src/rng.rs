//! Small random-sampling helpers (kept in-crate to stay within the approved
//! dependency set — no `rand_distr`).

use rand::Rng;

/// Sample a standard-normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Sample an index in `0..weights.len()` proportionally to `weights`.
///
/// # Panics
/// Panics if `weights` is empty or all weights are zero/negative.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must not be empty");
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    assert!(total > 0.0, "at least one weight must be positive");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if target < w {
            return i;
        }
        target -= w;
    }
    // Floating-point slack: fall back to the last positive weight.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("at least one positive weight")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn standard_normal_has_roughly_unit_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn weighted_index_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        weighted_index(&mut rng, &[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_index_rejects_all_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
