//! Summary statistics over study datasets.
//!
//! These are the quantities the analysis crate (and the calibration tests)
//! need: how far login clicks land from their originals, and what fraction
//! of attempts would be accepted under a centered tolerance of a given
//! half-width.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Distribution summary of per-click re-entry errors (Chebyshev distance
/// from the original click, in pixels).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReentrySummary {
    /// Number of (login, click) pairs measured.
    pub samples: usize,
    /// Mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// 95th percentile error.
    pub p95: f64,
    /// Maximum error.
    pub max: f64,
}

/// Compute the per-click Chebyshev re-entry errors of every login attempt.
pub fn reentry_errors(dataset: &Dataset) -> Vec<f64> {
    let mut errors = Vec::new();
    for login in &dataset.logins {
        let original = &dataset.passwords[login.password_index];
        for (attempt, orig) in login.clicks.iter().zip(&original.clicks) {
            errors.push(orig.chebyshev(attempt));
        }
    }
    errors
}

/// Summarize the re-entry error distribution of a dataset.
///
/// Returns `None` when the dataset has no login attempts.
pub fn reentry_summary(dataset: &Dataset) -> Option<ReentrySummary> {
    let mut errors = reentry_errors(dataset);
    if errors.is_empty() {
        return None;
    }
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
    let samples = errors.len();
    let mean = errors.iter().sum::<f64>() / samples as f64;
    Some(ReentrySummary {
        samples,
        mean,
        median: percentile(&errors, 0.50),
        p95: percentile(&errors, 0.95),
        max: *errors.last().expect("non-empty"),
    })
}

/// Fraction of login attempts in which *every* click falls within the
/// centered tolerance `t` (Chebyshev) of its original click — i.e. the
/// fraction a Centered Discretization system with whole-pixel tolerance `t`
/// would accept.
pub fn acceptance_rate_at_tolerance(dataset: &Dataset, t: f64) -> f64 {
    if dataset.logins.is_empty() {
        return 0.0;
    }
    let accepted = dataset
        .logins
        .iter()
        .filter(|login| {
            let original = &dataset.passwords[login.password_index];
            login
                .clicks
                .iter()
                .zip(&original.clicks)
                .all(|(a, o)| o.chebyshev(a) <= t)
        })
        .count();
    accepted as f64 / dataset.logins.len() as f64
}

/// Linear-interpolated percentile of an already-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{LoginRecord, PasswordRecord};
    use gp_geometry::Point;

    fn toy_dataset() -> Dataset {
        Dataset {
            passwords: vec![PasswordRecord {
                user_id: 0,
                image: "cars".into(),
                clicks: vec![Point::new(100.0, 100.0), Point::new(200.0, 200.0)],
            }],
            logins: vec![
                LoginRecord {
                    password_index: 0,
                    clicks: vec![Point::new(101.0, 100.0), Point::new(200.0, 203.0)],
                },
                LoginRecord {
                    password_index: 0,
                    clicks: vec![Point::new(110.0, 100.0), Point::new(200.0, 200.0)],
                },
            ],
        }
    }

    #[test]
    fn reentry_errors_are_chebyshev_distances() {
        let errors = reentry_errors(&toy_dataset());
        assert_eq!(errors, vec![1.0, 3.0, 10.0, 0.0]);
    }

    #[test]
    fn summary_statistics() {
        let s = reentry_summary(&toy_dataset()).unwrap();
        assert_eq!(s.samples, 4);
        assert!((s.mean - 3.5).abs() < 1e-9);
        assert_eq!(s.max, 10.0);
        assert!(s.median >= 1.0 && s.median <= 3.0);
        assert!(s.p95 <= 10.0 && s.p95 > 3.0);
    }

    #[test]
    fn empty_dataset_has_no_summary() {
        assert!(reentry_summary(&Dataset::new()).is_none());
        assert_eq!(acceptance_rate_at_tolerance(&Dataset::new(), 5.0), 0.0);
    }

    #[test]
    fn acceptance_rate_thresholds() {
        let d = toy_dataset();
        // First login: max error 3 → accepted at t ≥ 3.
        // Second login: max error 10 → accepted at t ≥ 10.
        assert_eq!(acceptance_rate_at_tolerance(&d, 2.0), 0.0);
        assert_eq!(acceptance_rate_at_tolerance(&d, 3.0), 0.5);
        assert_eq!(acceptance_rate_at_tolerance(&d, 9.0), 0.5);
        assert_eq!(acceptance_rate_at_tolerance(&d, 10.0), 1.0);
    }

    #[test]
    fn acceptance_rate_is_monotone_on_generated_data() {
        let dataset = crate::field_study::FieldStudyConfig::test_scale().generate();
        let mut last = 0.0;
        for t in [1.0, 2.0, 4.0, 6.0, 9.0, 13.0, 20.0] {
            let rate = acceptance_rate_at_tolerance(&dataset, t);
            assert!(rate >= last, "rate must grow with tolerance");
            last = rate;
        }
        assert!(last > 0.9);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&sorted, 0.5), 5.0);
    }
}
