//! The simulated participant: how click-points are chosen at enrollment and
//! how accurately they are re-targeted at login.

use crate::calibration::ClickAccuracy;
use crate::image::SyntheticImage;
use gp_geometry::Point;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Behavioural parameters of a simulated participant population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserModel {
    /// Probability that a chosen click-point is drawn from the image's
    /// hotspot distribution rather than uniformly.  Real PassPoints users
    /// cluster heavily on hotspots, which is what makes human-seeded
    /// dictionaries effective (§2.1, §5.1).
    pub hotspot_affinity: f64,
    /// Minimum Chebyshev separation enforced between the click-points of
    /// one password (users pick visually distinct objects).
    pub min_separation: f64,
    /// Re-entry accuracy model.
    pub accuracy: ClickAccuracy,
    /// Number of click-points per password (5 for PassPoints).
    pub clicks_per_password: usize,
}

impl Default for UserModel {
    fn default() -> Self {
        Self::study_default()
    }
}

impl UserModel {
    /// Parameters used for the synthetic field and lab studies.
    pub fn study_default() -> Self {
        Self {
            hotspot_affinity: 0.8,
            min_separation: 12.0,
            accuracy: ClickAccuracy::study_default(),
            clicks_per_password: 5,
        }
    }

    /// Choose a fresh password on the given image.
    ///
    /// Click-points are sampled from the image's hotspot distribution with
    /// the model's affinity, re-sampling (up to a bounded number of tries)
    /// when a candidate violates the minimum separation from already-chosen
    /// points.
    pub fn choose_password<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        image: &SyntheticImage,
    ) -> Vec<Point> {
        let mut clicks: Vec<Point> = Vec::with_capacity(self.clicks_per_password);
        while clicks.len() < self.clicks_per_password {
            let mut candidate = image.sample_click(rng, self.hotspot_affinity);
            let mut tries = 0;
            while clicks
                .iter()
                .any(|p| p.chebyshev(&candidate) < self.min_separation)
                && tries < 50
            {
                candidate = image.sample_click(rng, self.hotspot_affinity);
                tries += 1;
            }
            clicks.push(candidate);
        }
        clicks
    }

    /// Simulate one login attempt: every click of the original password is
    /// re-targeted with the model's re-entry error, clamped to the image and
    /// snapped to whole pixels (recorded clicks are pixel coordinates).
    pub fn reenter<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        image: &SyntheticImage,
        original: &[Point],
    ) -> Vec<Point> {
        original
            .iter()
            .map(|p| {
                let (ex, ey) = self.accuracy.sample_error_2d(rng);
                image.snap_to_pixel(&p.offset(ex, ey))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn passwords_have_five_separated_in_image_clicks() {
        let model = UserModel::study_default();
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let pw = model.choose_password(&mut rng, &image);
            assert_eq!(pw.len(), 5);
            for p in &pw {
                assert!(image.dims.contains_point(p));
            }
        }
    }

    #[test]
    fn min_separation_is_usually_respected() {
        let model = UserModel::study_default();
        let image = SyntheticImage::pool();
        let mut rng = StdRng::seed_from_u64(2);
        let mut violations = 0;
        let trials = 300;
        for _ in 0..trials {
            let pw = model.choose_password(&mut rng, &image);
            for i in 0..pw.len() {
                for j in (i + 1)..pw.len() {
                    if pw[i].chebyshev(&pw[j]) < model.min_separation {
                        violations += 1;
                    }
                }
            }
        }
        // The retry loop is bounded, so rare violations are tolerated, but
        // they must be the exception.
        assert!(
            violations < trials / 10,
            "{violations} separation violations"
        );
    }

    #[test]
    fn reentry_is_usually_close_to_the_original() {
        let model = UserModel::study_default();
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(3);
        let original = model.choose_password(&mut rng, &image);
        let mut within9 = 0;
        let trials = 2_000;
        for _ in 0..trials {
            let attempt = model.reenter(&mut rng, &image, &original);
            assert_eq!(attempt.len(), original.len());
            if attempt
                .iter()
                .zip(&original)
                .all(|(a, o)| a.chebyshev(o) <= 9.0)
            {
                within9 += 1;
            }
        }
        let frac = within9 as f64 / trials as f64;
        assert!(
            frac > 0.5,
            "whole-password accuracy at 9px should be common: {frac}"
        );
        assert!(frac < 1.0, "but not perfect: {frac}");
    }

    #[test]
    fn exact_accuracy_reenters_identically() {
        let mut model = UserModel::study_default();
        model.accuracy = ClickAccuracy::exact();
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(4);
        let original = model.choose_password(&mut rng, &image);
        let attempt = model.reenter(&mut rng, &image, &original);
        assert_eq!(attempt, original);
    }

    #[test]
    fn hotspot_affinity_increases_cross_user_click_overlap() {
        // The property that makes human-seeded dictionaries work: different
        // users pick nearby click-points far more often with high affinity.
        let image = SyntheticImage::cars();
        let overlap = |affinity: f64, seed: u64| -> f64 {
            let model = UserModel {
                hotspot_affinity: affinity,
                ..UserModel::study_default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let users: Vec<Vec<Point>> = (0..60)
                .map(|_| model.choose_password(&mut rng, &image))
                .collect();
            let mut close_pairs = 0usize;
            let mut total_pairs = 0usize;
            for a in 0..users.len() {
                for b in (a + 1)..users.len() {
                    for pa in &users[a] {
                        for pb in &users[b] {
                            total_pairs += 1;
                            if pa.chebyshev(pb) <= 9.0 {
                                close_pairs += 1;
                            }
                        }
                    }
                }
            }
            close_pairs as f64 / total_pairs as f64
        };
        let clustered = overlap(0.95, 7);
        let dispersed = overlap(0.0, 8);
        assert!(
            clustered > 3.0 * dispersed,
            "hotspot affinity should multiply click overlap: {clustered:.4} vs {dispersed:.4}"
        );
    }
}
