//! Property-based tests for the synthetic study substrate.

use gp_geometry::ImageDims;
use gp_study::{
    stats, ClickAccuracy, Dataset, FieldStudyConfig, LabStudyConfig, SyntheticImage, UserModel,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated field study has exactly the configured shape and every
    /// click lies on the study image at whole-pixel coordinates.
    #[test]
    fn field_study_shape_and_pixel_snapping(
        participants in 1u32..40,
        passwords in 1usize..60,
        logins in 0usize..120,
        seed in any::<u64>(),
    ) {
        let config = FieldStudyConfig {
            participants,
            total_passwords: passwords,
            total_logins: logins,
            user_model: UserModel::study_default(),
            seed,
        };
        let dataset = config.generate();
        prop_assert_eq!(dataset.password_count(), passwords);
        prop_assert_eq!(dataset.login_count(), logins);
        prop_assert!(dataset.participant_count() <= participants as usize);
        for record in &dataset.passwords {
            for c in &record.clicks {
                prop_assert!(ImageDims::STUDY.contains_point(c));
                prop_assert_eq!(c.x, c.x.round());
                prop_assert_eq!(c.y, c.y.round());
            }
        }
        for login in &dataset.logins {
            prop_assert!(login.password_index < dataset.password_count());
        }
    }

    /// Dataset CSV serialization round-trips structure and coordinates.
    #[test]
    fn dataset_csv_round_trip(seed in any::<u64>()) {
        let config = FieldStudyConfig { seed, ..FieldStudyConfig::test_scale() };
        let dataset = config.generate();
        let parsed = Dataset::from_csv(&dataset.to_csv()).unwrap();
        prop_assert_eq!(parsed.password_count(), dataset.password_count());
        prop_assert_eq!(parsed.login_count(), dataset.login_count());
        prop_assert_eq!(parsed.images(), dataset.images());
    }

    /// The acceptance rate at tolerance t is monotone in t and hits ~1 for
    /// large t on any generated dataset.
    #[test]
    fn acceptance_rate_monotone(seed in any::<u64>()) {
        let config = FieldStudyConfig { seed, ..FieldStudyConfig::test_scale() };
        let dataset = config.generate();
        let mut last = 0.0;
        for t in [0.0, 1.0, 2.0, 4.0, 6.0, 9.0, 13.0, 25.0, 60.0] {
            let rate = stats::acceptance_rate_at_tolerance(&dataset, t);
            prop_assert!(rate >= last - 1e-12);
            prop_assert!((0.0..=1.0).contains(&rate));
            last = rate;
        }
        prop_assert!(last > 0.95);
    }

    /// Click-accuracy mixtures: the analytic within-tolerance probability is
    /// monotone in t and bounded by [0, 1].
    #[test]
    fn click_accuracy_probability_is_well_formed(
        tight in 0.1..5.0f64,
        sloppy in 1.0..20.0f64,
        fraction in 0.0..1.0f64,
        t in 0.5..30.0f64,
    ) {
        let acc = ClickAccuracy { tight_sigma: tight, sloppy_sigma: sloppy, sloppy_fraction: fraction };
        let p = acc.within_centered_tolerance(t);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(acc.within_centered_tolerance(t + 5.0) >= p);
    }

    /// User passwords always contain the configured number of in-image
    /// clicks regardless of the behavioural parameters.
    #[test]
    fn user_model_always_produces_valid_passwords(
        affinity in 0.0..1.0f64,
        separation in 0.0..40.0f64,
        seed in any::<u64>(),
    ) {
        let model = UserModel {
            hotspot_affinity: affinity,
            min_separation: separation,
            accuracy: ClickAccuracy::study_default(),
            clicks_per_password: 5,
        };
        let image = SyntheticImage::cars();
        let mut rng = StdRng::seed_from_u64(seed);
        let pw = model.choose_password(&mut rng, &image);
        prop_assert_eq!(pw.len(), 5);
        for p in &pw {
            prop_assert!(image.dims.contains_point(p));
        }
        // Re-entries stay in the image too.
        let attempt = model.reenter(&mut rng, &image, &pw);
        prop_assert_eq!(attempt.len(), 5);
        for p in &attempt {
            prop_assert!(image.dims.contains_point(p));
        }
    }

    /// Lab-study generation is deterministic in the seed and changes with it.
    #[test]
    fn lab_study_deterministic_in_seed(seed in any::<u64>()) {
        let a = LabStudyConfig { seed, ..LabStudyConfig::paper_scale() }.generate();
        let b = LabStudyConfig { seed, ..LabStudyConfig::paper_scale() }.generate();
        prop_assert_eq!(&a, &b);
        let c = LabStudyConfig { seed: seed.wrapping_add(1), ..LabStudyConfig::paper_scale() }.generate();
        prop_assert_ne!(a, c);
    }
}
