//! End-to-end networked deployment: spawn the sharded, pipelined TCP
//! authentication server, enroll users, push a pipelined login burst
//! through the batch verifier, demonstrate the online-attack lockout, and
//! print the shard / worker-pool / batching statistics.
//!
//! Run with: `cargo run --example auth_server_demo`

use graphical_passwords::geometry::Point;
use graphical_passwords::netauth::{
    AuthClient, AuthServer, ClientMessage, LoginDecision, ServerConfig,
};

fn main() {
    let config = ServerConfig {
        hash_iterations: 1000,
        ..ServerConfig::study_default()
    };
    println!(
        "deployment: {} shards, {} workers, batches of ≤{} logins per hash run",
        config.shards, config.workers, config.batch_max
    );
    let server = AuthServer::new(config);
    let handle = server.spawn().expect("spawn server");
    println!("authentication server listening on {}", handle.addr());

    let clicks = graphical_passwords::example_clicks();

    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    let (scheme, n_clicks) = client.get_config().expect("get config");
    println!("server scheme: {scheme}, clicks per password: {n_clicks}");

    // Enroll a small population so the shards have something to hold.
    for user in ["alice", "bob", "carol", "dave", "erin", "frank"] {
        let shifted: Vec<Point> = clicks
            .iter()
            .map(|p| p.offset(user.len() as f64 * 3.0, -(user.len() as f64)))
            .collect();
        client.enroll(user, &shifted).expect("enroll");
    }
    println!("enrolled 6 accounts across the store shards");

    // A human-like imperfect re-entry: every click is a few pixels off.
    let alice: Vec<Point> = clicks.iter().map(|p| p.offset(15.0, -5.0)).collect();
    let wobbly: Vec<Point> = alice.iter().map(|p| p.offset(5.0, -4.0)).collect();
    let (decision, _) = client.login("alice", &wobbly).expect("login");
    println!("imperfect re-entry (5 px off): {decision:?}");

    // A pipelined burst: eight logins in flight at once, answered in
    // order, hashed together in one multi-lane batch run.
    let burst: Vec<ClientMessage> = (0..8)
        .map(|_| ClientMessage::Login {
            username: "alice".into(),
            clicks: alice.clone(),
        })
        .collect();
    let responses = client.request_pipelined(&burst).expect("pipelined burst");
    println!(
        "pipelined burst: {} logins answered in order",
        responses.len()
    );

    // An online guessing attacker: far-off guesses until lockout.
    let wrong: Vec<Point> = alice.iter().map(|p| p.offset(-35.0, -35.0)).collect();
    for attempt in 1..=4 {
        let (decision, failures) = client.login("alice", &wrong).expect("login");
        println!("guess #{attempt}: {decision:?} (consecutive failures: {failures})");
        if decision == LoginDecision::LockedOut {
            break;
        }
    }

    // Even the correct password is now refused.
    let (decision, _) = client.login("alice", &alice).expect("login");
    println!("correct password after lockout: {decision:?}");

    client.quit().expect("quit");

    // The serving-layer statistics: shard occupancy, worker counters and
    // how well the batch verifier coalesced the pipelined logins.
    let stats = handle.stats();
    println!("--- serving stats ---");
    for shard in &stats.shards {
        println!(
            "shard {}: {} accounts, {} lookups, {} verifications",
            shard.shard, shard.accounts, shard.lookups, shard.verifies
        );
    }
    for worker in &stats.workers {
        println!(
            "worker {}: {} connections, {} requests ({} logins)",
            worker.worker, worker.connections, worker.requests, worker.logins
        );
    }
    println!(
        "batch verifier: {} hash runs for {} attempts (mean batch {:.1}, largest {})",
        stats.batch.runs,
        stats.batch.attempts,
        stats.batch.mean_batch(),
        stats.batch.max_run
    );

    handle.shutdown();
    println!("server shut down cleanly");
}
