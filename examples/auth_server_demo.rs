//! End-to-end networked deployment: spawn the TCP authentication server,
//! enroll a user from a client, log in with imperfect (but within-tolerance)
//! clicks, then demonstrate the online-attack lockout.
//!
//! Run with: `cargo run --example auth_server_demo`

use graphical_passwords::geometry::Point;
use graphical_passwords::netauth::{AuthClient, AuthServer, LoginDecision, ServerConfig};

fn main() {
    let config = ServerConfig {
        hash_iterations: 1000,
        ..ServerConfig::study_default()
    };
    let server = AuthServer::new(config);
    let handle = server.spawn().expect("spawn server");
    println!("authentication server listening on {}", handle.addr());

    let clicks = graphical_passwords::example_clicks();

    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    let (scheme, n_clicks) = client.get_config().expect("get config");
    println!("server scheme: {scheme}, clicks per password: {n_clicks}");

    client.enroll("alice", &clicks).expect("enroll");
    println!("enrolled account 'alice'");

    // A human-like imperfect re-entry: every click is a few pixels off.
    let wobbly: Vec<Point> = clicks.iter().map(|p| p.offset(5.0, -4.0)).collect();
    let (decision, _) = client.login("alice", &wobbly).expect("login");
    println!("imperfect re-entry (5 px off): {decision:?}");

    // An online guessing attacker: far-off guesses until lockout.
    let wrong: Vec<Point> = clicks.iter().map(|p| p.offset(-35.0, -35.0)).collect();
    for attempt in 1..=4 {
        let (decision, failures) = client.login("alice", &wrong).expect("login");
        println!("guess #{attempt}: {decision:?} (consecutive failures: {failures})");
        if decision == LoginDecision::LockedOut {
            break;
        }
    }

    // Even the correct password is now refused.
    let (decision, _) = client.login("alice", &clicks).expect("login");
    println!("correct password after lockout: {decision:?}");

    client.quit().expect("quit");
    handle.shutdown();
    println!("server shut down cleanly");
}
