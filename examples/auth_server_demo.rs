//! End-to-end networked deployment: spawn the sharded, pipelined TCP
//! authentication server with the crash-safe durable store, enroll users,
//! push a pipelined login burst through the batch verifier, demonstrate
//! the online-attack lockout, *crash* the server and recover every
//! acknowledged account from the write-ahead logs, and print the shard /
//! worker-pool / batching / durability statistics.
//!
//! Run with: `cargo run --example auth_server_demo`

use graphical_passwords::geometry::Point;
use graphical_passwords::netauth::{
    AuthClient, AuthServer, ClientMessage, DurabilityConfig, FsyncPolicy, LoginDecision,
    ServerConfig,
};

fn main() {
    // A durable deployment: per-shard write-ahead logs under `state_dir`,
    // fsynced on every enrollment, compacted into atomic snapshots by a
    // background thread once a shard's log passes the threshold.
    let state_dir = std::env::temp_dir().join(format!("gp-auth-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let config = ServerConfig {
        hash_iterations: 1000,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Always,
            ..DurabilityConfig::at(&state_dir)
        }),
        ..ServerConfig::study_default()
    };
    println!(
        "deployment: {} shards, {} workers, batches of ≤{} logins per hash run",
        config.shards, config.workers, config.batch_max
    );
    println!(
        "durability: WAL per shard under {}, fsync on every enrollment",
        state_dir.display()
    );
    let server = AuthServer::open(config.clone()).expect("open durable store");
    let handle = server.spawn().expect("spawn server");
    println!("authentication server listening on {}", handle.addr());

    let clicks = graphical_passwords::example_clicks();

    let mut client = AuthClient::connect(handle.addr()).expect("connect");
    let (scheme, n_clicks) = client.get_config().expect("get config");
    println!("server scheme: {scheme}, clicks per password: {n_clicks}");

    // Enroll a small population so the shards have something to hold.
    for user in ["alice", "bob", "carol", "dave", "erin", "frank"] {
        let shifted: Vec<Point> = clicks
            .iter()
            .map(|p| p.offset(user.len() as f64 * 3.0, -(user.len() as f64)))
            .collect();
        client.enroll(user, &shifted).expect("enroll");
    }
    println!("enrolled 6 accounts across the store shards");

    // A human-like imperfect re-entry: every click is a few pixels off.
    let alice: Vec<Point> = clicks.iter().map(|p| p.offset(15.0, -5.0)).collect();
    let wobbly: Vec<Point> = alice.iter().map(|p| p.offset(5.0, -4.0)).collect();
    let (decision, _) = client.login("alice", &wobbly).expect("login");
    println!("imperfect re-entry (5 px off): {decision:?}");

    // A pipelined burst: eight logins in flight at once, answered in
    // order, hashed together in one multi-lane batch run.
    let burst: Vec<ClientMessage> = (0..8)
        .map(|_| ClientMessage::Login {
            username: "alice".into(),
            clicks: alice.clone(),
        })
        .collect();
    let responses = client.request_pipelined(&burst).expect("pipelined burst");
    println!(
        "pipelined burst: {} logins answered in order",
        responses.len()
    );

    // An online guessing attacker: far-off guesses until lockout.
    let wrong: Vec<Point> = alice.iter().map(|p| p.offset(-35.0, -35.0)).collect();
    for attempt in 1..=4 {
        let (decision, failures) = client.login("alice", &wrong).expect("login");
        println!("guess #{attempt}: {decision:?} (consecutive failures: {failures})");
        if decision == LoginDecision::LockedOut {
            break;
        }
    }

    // Even the correct password is now refused.
    let (decision, _) = client.login("alice", &alice).expect("login");
    println!("correct password after lockout: {decision:?}");

    client.quit().expect("quit");

    // The serving-layer statistics: shard occupancy, worker counters and
    // how well the batch verifier coalesced the pipelined logins.
    let stats = handle.stats();
    println!("--- serving stats ---");
    for shard in &stats.shards {
        println!(
            "shard {}: {} accounts, {} lookups, {} verifications",
            shard.shard, shard.accounts, shard.lookups, shard.verifies
        );
    }
    for worker in &stats.workers {
        println!(
            "worker {}: {} connections, {} requests ({} logins)",
            worker.worker, worker.connections, worker.requests, worker.logins
        );
    }
    println!(
        "batch verifier: {} hash runs for {} attempts (mean batch {:.1}, largest {})",
        stats.batch.runs,
        stats.batch.attempts,
        stats.batch.mean_batch(),
        stats.batch.max_run
    );
    if let Some(durability) = handle.server().store().durability_stats() {
        println!(
            "durability: {} WAL appends, {} fsyncs, {} snapshot compactions, {} WAL bytes pending",
            durability.wal_appends,
            durability.wal_syncs,
            durability.snapshots,
            durability.wal_bytes
        );
    }

    // Crash the server: threads stop with *no* orderly save.  Everything
    // in memory — accounts and lockout state alike — is gone; only the
    // WAL-backed state directory survives.
    handle.abort();
    println!("--- server crashed (no final snapshot) ---");

    // Recovery: reopening the same directory replays snapshots + WAL
    // tails.  Every acknowledged enrollment is back; the lockout table
    // was deliberately memory-only, so the locked account is usable again
    // (lockouts throttle online guessing, they are not account state).
    let recovered = AuthServer::open(config).expect("recover durable store");
    let durability = recovered.store().durability_stats().expect("durable");
    println!(
        "recovered {} accounts ({} WAL records replayed)",
        recovered.store().len(),
        durability.replayed_records
    );
    let handle = recovered.spawn().expect("respawn server");
    let mut client = AuthClient::connect(handle.addr()).expect("reconnect");
    let (decision, _) = client.login("alice", &alice).expect("login after recovery");
    println!("alice's correct password after crash recovery: {decision:?}");
    client.quit().expect("quit");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
    println!("server shut down cleanly");
}
