//! Replicated deployment, end to end: spawn a 3-node auth cluster on
//! loopback (per-node durable stores, synchronous WAL-streaming
//! replication over a consistent-hash ring), enroll accounts through the
//! ring-routing client, *crash* a node mid-service and show every account
//! failing over to its replica, then restart the dead node from its own
//! write-ahead logs and watch it rejoin the ring — the operator runbook
//! from the README, as a program.
//!
//! Run with: `cargo run --example cluster_demo`

use graphical_passwords::geometry::Point;
use graphical_passwords::netauth::replication::ReplicatorConfig;
use graphical_passwords::netauth::{Cluster, ClusterClient, LoginDecision, ServerConfig};

/// Deterministic per-user click sequence (shifted copies of the shared
/// example password, so each account hashes differently).
fn clicks_for(user: &str) -> Vec<Point> {
    let shift = user.len() as f64;
    graphical_passwords::example_clicks()
        .iter()
        .map(|p| p.offset(shift * 4.0, -shift * 2.0))
        .collect()
}

fn main() {
    let users = ["alice", "bob", "carol", "dave", "erin", "frank", "grace"];
    let root = std::env::temp_dir().join(format!("gp-cluster-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Three nodes, each with its own durable store under `root/node-i/`.
    // Synchronous replication: an enrollment is acknowledged only after
    // the account's backup node has durably applied it too.
    let config = ServerConfig {
        hash_iterations: 1000,
        ..ServerConfig::study_default()
    };
    let mut cluster =
        Cluster::spawn(3, config, ReplicatorConfig::default(), &root).expect("spawn cluster");
    println!("3-node replicated cluster up:");
    for (node, addr) in cluster.members() {
        println!("  {node} serving on {addr}");
    }

    // The routing client owns the same consistent-hash ring as the
    // servers: placement is a pure function of the membership, so no
    // coordination service is needed to agree on who owns an account.
    let mut client = ClusterClient::new(&cluster.members());
    for user in users {
        client.enroll(user, &clicks_for(user)).expect("enroll");
        println!(
            "  enrolled {user:<6} → primary {}",
            client.route(user).expect("live ring")
        );
    }

    for user in users {
        let (decision, _) = client.login(user, &clicks_for(user)).expect("login");
        assert_eq!(decision, LoginDecision::Accepted);
    }
    println!("all {} accounts log in on the healthy cluster", users.len());

    // Crash node-0: the auth listener is aborted mid-service with no
    // flush and no farewell.  The accounts it owned survive on their
    // replica nodes; the client's first failed request marks node-0 dead
    // and re-resolves the ring, landing exactly on each replica holder.
    cluster.kill(0);
    println!("--- node-0 crashed (no flush, no farewell) ---");
    for user in users {
        let (decision, _) = client
            .login(user, &clicks_for(user))
            .expect("failover login");
        assert_eq!(decision, LoginDecision::Accepted);
        println!(
            "  {user:<6} now served by {}",
            client.route(user).expect("survivors")
        );
    }
    println!("zero accounts lost across the crash");

    // The operator runbook: restart the dead node from its own durable
    // directory.  It crash-recovers snapshots + WAL tails, starts fresh
    // listeners, and every survivor re-admits it to its ring.
    cluster.restart(0).expect("restart node-0");
    println!("--- node-0 restarted from its own WAL + snapshots ---");
    let mut fresh = ClusterClient::new(&cluster.members());
    for user in users {
        let (decision, _) = fresh
            .login(user, &clicks_for(user))
            .expect("post-restart login");
        assert_eq!(decision, LoginDecision::Accepted);
    }
    println!(
        "full strength again: {} nodes, all {} accounts logging in",
        cluster.members().len(),
        users.len()
    );

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    println!("cluster shut down cleanly");
}
