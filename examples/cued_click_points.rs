//! Cued Click-Points and Persuasive Cued Click-Points walkthrough: the
//! follow-on schemes cited in §2 of the paper, built on the same Centered
//! Discretization layer.
//!
//! Run with: `cargo run --example cued_click_points`

use graphical_passwords::geometry::{ImageDims, Point};
use graphical_passwords::passwords::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = DiscretizationConfig::centered(9);

    // --- Cued Click-Points: one click per image, image path driven by the
    //     previous click.
    let ccp = CuedClickPoints::new(ImageDims::STUDY, 50, config, 1000);
    let clicks = graphical_passwords::example_clicks();
    let stored = ccp.create("alice", &clicks).expect("create CCP password");
    println!(
        "CCP image path for alice: {:?}",
        ccp.image_sequence("alice", &clicks)
    );

    let wobbly: Vec<Point> = clicks.iter().map(|p| p.offset(6.0, 6.0)).collect();
    println!(
        "within-tolerance login accepted: {}",
        ccp.login(&stored, &wobbly).unwrap()
    );

    let mut wrong = clicks.clone();
    wrong[1] = Point::new(30.0, 30.0);
    println!(
        "wrong second click: accepted = {} (image path silently diverges: {:?})",
        ccp.login(&stored, &wrong).unwrap(),
        ccp.image_sequence("alice", &wrong)
    );

    // --- Persuasive Cued Click-Points: creation is constrained to a random
    //     viewport, flattening hotspots.
    let pccp = PersuasiveCuedClickPoints::new(ImageDims::STUDY, 50, config, 1000);
    let mut rng = StdRng::seed_from_u64(42);
    let viewports = pccp.suggest_viewports(&mut rng);
    println!("\nPCCP viewports suggested during creation:");
    for (i, v) in viewports.iter().enumerate() {
        println!("  click {}: {}", i + 1, v);
    }
    let persuaded_clicks: Vec<Point> = viewports.iter().map(|v| v.center()).collect();
    let stored = pccp
        .create("bob", &persuaded_clicks, &viewports)
        .expect("create PCCP password");
    println!(
        "PCCP login with the viewport-guided clicks: {}",
        pccp.login(&stored, &persuaded_clicks).unwrap()
    );
}
