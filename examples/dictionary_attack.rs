//! Regenerate the paper's security analysis: the human-seeded offline
//! dictionary attack with known grid identifiers (Figures 7 and 8), plus
//! the hash-only cost model of §5.1.
//!
//! Run with: `cargo run --release --example dictionary_attack [--quick]`

use graphical_passwords::analysis::{Experiment, ExperimentScale};
use graphical_passwords::attacks::{ClickPointPool, HashOnlyCostModel};
use graphical_passwords::discretization::{CenteredDiscretization, RobustDiscretization};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };

    let lab = scale.lab_dataset();
    for image in lab.images() {
        let pool = ClickPointPool::from_dataset(&lab, &image, 5);
        println!(
            "Dictionary for {image:>5}: {} harvested click-points, {:.1}-bit dictionary ({} entries)",
            pool.pool_size(),
            pool.entry_bits(),
            pool.entry_count()
        );
    }
    println!();

    println!("{}", Experiment::Figure7.run(&scale));
    println!("{}", Experiment::Figure8.run(&scale));

    // §5.1 hash-only cost model: what the same dictionary costs when the
    // grid identifiers are NOT known.
    let pool = ClickPointPool::from_dataset(&lab, "cars", 5);
    let robust = RobustDiscretization::new(6.0).unwrap();
    let centered = CenteredDiscretization::from_pixel_tolerance(6);
    let robust_cost = HashOnlyCostModel::for_scheme(&robust, &pool, 1000);
    let centered_cost = HashOnlyCostModel::for_scheme(&centered, &pool, 1000);
    println!("Hash-only offline attack work factors (r = 6, h^1000, Cars dictionary):");
    println!(
        "  Robust Discretization:   3 grids/click  -> 2^{:.1} hash operations",
        robust_cost.work_bits()
    );
    println!(
        "  Centered Discretization: {} grids/click -> 2^{:.1} hash operations",
        centered_cost.grid_identifiers_per_click,
        centered_cost.work_bits()
    );
    println!(
        "\nPaper reference points (Figure 8): at r = 6, 45.1% of Cars passwords\n\
         cracked under Robust vs 14.8% under Centered; at r = 9 Robust reaches\n\
         up to 79% vs 26% for Centered."
    );
}
