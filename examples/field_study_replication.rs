//! Regenerate the paper's usability analysis (Tables 1 and 2) from the
//! synthetic field study.
//!
//! Run with: `cargo run --release --example field_study_replication [--quick]`
//!
//! Without `--quick` the full paper-scale dataset is generated
//! (191 participants, 481 passwords, 3339 logins).

use graphical_passwords::analysis::{Experiment, ExperimentScale};
use graphical_passwords::study::stats::reentry_summary;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };

    let dataset = scale.field_dataset();
    println!(
        "Synthetic field study: {} participants, {} passwords, {} login attempts on {:?}\n",
        dataset.participant_count(),
        dataset.password_count(),
        dataset.login_count(),
        dataset.images()
    );
    if let Some(summary) = reentry_summary(&dataset) {
        println!(
            "Re-entry accuracy (Chebyshev px per click): mean {:.2}, median {:.2}, p95 {:.2}, max {:.1}\n",
            summary.mean, summary.median, summary.p95, summary.max
        );
    }

    println!("{}", Experiment::Table1.run(&scale));
    println!("{}", Experiment::Table2.run(&scale));
    println!(
        "Paper reference points: Table 1 reports 21.1% false rejects at 13x13;\n\
         Table 2 reports 14.1% false accepts at r=6 and 0% false rejects throughout.\n\
         Magnitudes depend on the synthetic accuracy calibration; the shape\n\
         (false rejects at equal grid size, false accepts at equal r, zero for\n\
         Centered Discretization) is the reproduced result."
    );
}
