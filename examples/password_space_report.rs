//! Regenerate Table 3 (theoretical password space) and the §5.2
//! information-revealed comparison, plus the Figure 1 geometry diagram.
//!
//! Run with: `cargo run --example password_space_report`

use graphical_passwords::analysis::{Experiment, ExperimentScale};
use graphical_passwords::discretization::text_password_bits;

fn main() {
    let scale = ExperimentScale::quick(); // these experiments need no dataset
    println!("{}", Experiment::Table3.run(&scale));
    println!(
        "Comparison point: a random 8-character text password over the standard\n\
         95-character alphabet has {:.1} bits of theoretical space.\n",
        text_password_bits(95, 8)
    );
    println!("{}", Experiment::InformationRevealed.run(&scale));
    println!("{}", Experiment::Figure1.run(&scale));
}
