//! Quickstart: enroll and verify a PassPoints password under both
//! discretization schemes, and see where they disagree.
//!
//! Run with: `cargo run --example quickstart`

use graphical_passwords::geometry::{ImageDims, Point};
use graphical_passwords::passwords::prelude::*;

fn main() {
    let clicks = graphical_passwords::example_clicks();

    // A PassPoints deployment with Centered Discretization (9-pixel
    // guaranteed tolerance) on the paper's 451x331 study image.
    let centered =
        GraphicalPasswordSystem::passpoints(ImageDims::STUDY, DiscretizationConfig::centered(9));
    // The same deployment with the prior scheme, Robust Discretization,
    // at the same guaranteed tolerance.
    let robust =
        GraphicalPasswordSystem::passpoints(ImageDims::STUDY, DiscretizationConfig::robust(9.0));

    println!(
        "Original click-points: {:?}\n",
        clicks.iter().map(|p| p.to_string()).collect::<Vec<_>>()
    );

    let stored_centered = centered.enroll("alice", &clicks).expect("enroll centered");
    let stored_robust = robust.enroll("alice", &clicks).expect("enroll robust");

    println!(
        "Stored record (Centered Discretization):\n  {}\n",
        stored_centered.to_record()
    );
    println!(
        "Stored record (Robust Discretization):\n  {}\n",
        stored_robust.to_record()
    );

    // Replay a few login attempts at increasing distance from the original
    // click-points and show each scheme's decision.
    println!(
        "{:>10}  {:>22}  {:>22}",
        "offset px", "centered (r=9)", "robust (r=9, 54x54)"
    );
    for offset in [0.0, 4.0, 9.0, 10.0, 14.0, 20.0, 27.0, 30.0] {
        let attempt: Vec<Point> = clicks
            .iter()
            .map(|p| ImageDims::STUDY.clamp_point(&p.offset(offset, offset)))
            .collect();
        let c = centered.verify(&stored_centered, &attempt).unwrap();
        let r = robust.verify(&stored_robust, &attempt).unwrap();
        println!(
            "{offset:>10}  {:>22}  {:>22}",
            if c { "accepted" } else { "rejected" },
            if r { "accepted" } else { "rejected" }
        );
    }

    println!();
    let c_scheme = DiscretizationConfig::centered(9).build();
    let r_scheme = DiscretizationConfig::robust(9.0).build();
    println!(
        "Centered: grid {}x{} squares, accepts up to {} px, {} possible grid identifiers",
        c_scheme.grid_square_size(),
        c_scheme.grid_square_size(),
        c_scheme.maximum_accepted_distance(),
        c_scheme.num_grid_identifiers()
    );
    println!(
        "Robust:   grid {}x{} squares, accepts up to {} px, {} possible grid identifiers",
        r_scheme.grid_square_size(),
        r_scheme.grid_square_size(),
        r_scheme.maximum_accepted_distance(),
        r_scheme.num_grid_identifiers()
    );
    println!(
        "\nRobust's 6x-larger squares are what the paper's security analysis\n\
         (Table 3, Figures 7-8) charges against it; its off-center tolerance is\n\
         what the usability analysis (Tables 1-2) charges against it."
    );
}
