//! Run any (or every) experiment of the paper's evaluation by name.
//!
//! Usage:
//!   cargo run --release --example reproduce                  # all, paper scale
//!   cargo run --release --example reproduce -- --quick       # all, reduced scale
//!   cargo run --release --example reproduce -- table3        # one experiment
//!   cargo run --release --example reproduce -- figure8 --quick

use graphical_passwords::analysis::{Experiment, ExperimentScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        ExperimentScale::quick()
    } else {
        ExperimentScale::paper()
    };
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments: Vec<Experiment> = if requested.is_empty() {
        Experiment::all().to_vec()
    } else {
        let mut selected = Vec::new();
        for name in &requested {
            match Experiment::all().iter().find(|e| e.id() == name.as_str()) {
                Some(e) => selected.push(*e),
                None => {
                    eprintln!(
                        "unknown experiment {name:?}; available: {}",
                        Experiment::all()
                            .iter()
                            .map(|e| e.id())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        selected
    };

    for experiment in experiments {
        println!(
            "=== {} — {} ===\n",
            experiment.id(),
            experiment.description()
        );
        println!("{}", experiment.run(&scale));
        println!();
    }
}
