//! Extension: Centered Discretization in three dimensions.
//!
//! Section 3.2 of the paper points out that the construction generalizes to
//! n-D, which would let 3-D graphical password schemes (users picking points
//! inside a virtual room) discretize the whole volume instead of a fixed set
//! of clickable objects.  This example discretizes a small "room" and shows
//! the password-space gain over an object-based scheme.
//!
//! Run with: `cargo run --example three_d_passwords`

use graphical_passwords::discretization::CenteredNd;

fn main() {
    // A 4m x 3m x 2.5m room at millimetre resolution.
    let room_mm = [4000.0, 3000.0, 2500.0];
    // Tolerance: the user must return to within 5 cm of the original point.
    let r = 50.0;
    let scheme = CenteredNd::new(3, r).expect("valid tolerance");

    let original = [1234.0, 567.0, 1890.0];
    let enrolled = scheme.enroll(&original);
    println!("original point (mm):       {original:?}");
    println!("stored segment indices:    {:?}", enrolled.indices);
    println!("stored clear offsets (mm): {:?}", enrolled.offsets);

    let nearby = [1260.0, 540.0, 1920.0]; // within 50 mm on every axis
    let far = [1300.0, 567.0, 1890.0]; // 66 mm off on the x axis
    println!(
        "re-entry {nearby:?} accepted: {}",
        scheme.accepts(&original, &nearby)
    );
    println!(
        "re-entry {far:?} accepted:    {}",
        scheme.accepts(&original, &far)
    );

    // Password space: number of distinguishable 2r-sided cells in the room,
    // versus a Blonder/3-D-object scheme with a few dozen predefined
    // clickable objects.
    let cells: f64 = room_mm
        .iter()
        .map(|extent| (extent / (2.0 * r)).ceil())
        .product();
    let clicks = 5u32;
    let bits_discretized = clicks as f64 * cells.log2();
    let predefined_objects = 40.0f64;
    let bits_objects = clicks as f64 * predefined_objects.log2();
    println!(
        "\n5-point password space: {:.1} bits with 3-D Centered Discretization \
         ({} cells) vs {:.1} bits with {} predefined objects",
        bits_discretized, cells as u64, bits_objects, predefined_objects as u64
    );
}
