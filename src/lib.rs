//! # graphical-passwords
//!
//! A from-scratch Rust reproduction of *Centered Discretization with
//! Application to Graphical Passwords* (Chiasson, Srinivasan, Biddle,
//! van Oorschot — USENIX UPSEC 2008), packaged as a workspace of focused
//! crates and re-exported here for convenience.
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`crypto`] | `gp-crypto` | SHA-256, HMAC, iterated/salted password hashing |
//! | [`geometry`] | `gp-geometry` | points, rectangles, grids, tolerance squares |
//! | [`discretization`] | `gp-discretization` | Centered, Robust and static-grid discretization; password-space math |
//! | [`passwords`] | `gp-passwords` | PassPoints / Cued Click-Points / Persuasive CCP, hashed storage, account store |
//! | [`study`] | `gp-study` | synthetic field & lab study generator (images, hotspots, user model) |
//! | [`attacks`] | `gp-attacks` | human-seeded dictionaries, offline/online attacks, cost models |
//! | [`analysis`] | `gp-analysis` | experiment harness regenerating the paper's tables and figures |
//! | [`netauth`] | `gp-netauth` | framed TCP authentication server and client |
//!
//! ## Quickstart
//!
//! ```
//! use graphical_passwords::passwords::prelude::*;
//! use graphical_passwords::geometry::{ImageDims, Point};
//!
//! // A PassPoints deployment with Centered Discretization, 9-pixel tolerance.
//! let system = GraphicalPasswordSystem::passpoints(
//!     ImageDims::STUDY,
//!     DiscretizationConfig::centered(9),
//! );
//! let clicks = vec![
//!     Point::new(50.0, 60.0),
//!     Point::new(120.0, 200.0),
//!     Point::new(301.0, 75.0),
//!     Point::new(400.0, 310.0),
//!     Point::new(222.0, 111.0),
//! ];
//! let stored = system.enroll("alice", &clicks).unwrap();
//! assert!(system.verify(&stored, &clicks).unwrap());
//! ```
//!
//! See `examples/` for runnable programs covering the full evaluation
//! (Tables 1–3, Figures 7–8) and the networked deployment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gp_analysis as analysis;
pub use gp_attacks as attacks;
pub use gp_crypto as crypto;
pub use gp_discretization as discretization;
pub use gp_geometry as geometry;
pub use gp_netauth as netauth;
pub use gp_passwords as passwords;
pub use gp_study as study;

/// The five click-points used in examples and documentation, chosen to be
/// well inside the 451×331 study image and far apart from each other.
pub fn example_clicks() -> Vec<gp_geometry::Point> {
    vec![
        gp_geometry::Point::new(50.0, 60.0),
        gp_geometry::Point::new(120.0, 200.0),
        gp_geometry::Point::new(301.0, 75.0),
        gp_geometry::Point::new(400.0, 310.0),
        gp_geometry::Point::new(222.0, 111.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_clicks_are_valid_for_the_study_policy() {
        let policy = passwords::PasswordPolicy::study_default();
        assert!(policy.validate_enrollment(&example_clicks()).is_ok());
    }

    #[test]
    fn re_exports_are_wired_up() {
        assert_eq!(geometry::ImageDims::STUDY.width, 451);
        assert_eq!(crypto::PasswordHasher::DEFAULT_ITERATIONS, 1000);
        let scheme = discretization::CenteredDiscretization::from_pixel_tolerance(9);
        assert_eq!(
            discretization::DiscretizationScheme::grid_square_size(&scheme),
            19.0
        );
    }
}
