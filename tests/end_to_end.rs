//! Cross-crate integration tests: the full pipeline from synthetic study
//! data through enrollment, verification, analysis and attack, exercised
//! exactly the way the examples and benches use it.

use graphical_passwords::analysis::{
    crack_percentages, figure8, table1, table2, table3, Experiment, ExperimentScale,
};
use graphical_passwords::attacks::{ClickPointPool, OfflineKnownGridAttack};
use graphical_passwords::geometry::{ImageDims, Point};
use graphical_passwords::netauth::{
    AuthClient, AuthServer, ClientMessage, LoginDecision, ServerConfig, ServerMessage,
};
use graphical_passwords::passwords::prelude::*;
use graphical_passwords::study::{FieldStudyConfig, LabStudyConfig};

/// The complete usability replay: generate the field study, run the Table 1
/// and Table 2 analyses, and check the qualitative claims of the paper.
#[test]
fn usability_pipeline_reproduces_paper_shape() {
    let dataset = FieldStudyConfig::test_scale().generate();

    let t1 = table1(&dataset);
    let t2 = table2(&dataset);

    // Centered Discretization never false-accepts or false-rejects.
    for row in t1.iter().chain(t2.iter()) {
        assert_eq!(row.centered_false_accept_pct, 0.0);
        assert_eq!(row.centered_false_reject_pct, 0.0);
    }
    // Robust Discretization shows false rejects at equal grid size …
    assert!(t1.iter().any(|row| row.false_reject_pct > 1.0));
    // … and false accepts at equal r, with (essentially) no false rejects.
    assert!(t2.iter().any(|row| row.false_accept_pct > 1.0));
    for row in &t2 {
        assert!(row.false_reject_pct < 1.0);
    }
}

/// The complete security replay: lab-seeded dictionary against field
/// passwords enrolled under each scheme at equal r (Figure 8's comparison).
#[test]
fn security_pipeline_shows_centered_advantage_at_equal_r() {
    let field = FieldStudyConfig::test_scale().generate();
    let lab = LabStudyConfig::paper_scale().generate();
    let points = figure8(&field, &lab, 2);
    for image in field.images() {
        let (robust, centered) = crack_percentages(&points, &image, "r=9").expect("curve point");
        assert!(
            robust >= centered,
            "{image}: robust ({robust:.1}%) should be cracked at least as much as centered ({centered:.1}%)"
        );
    }
}

/// Table 3 is pure math and must match the paper exactly.
#[test]
fn password_space_matches_paper_exactly() {
    let rows = table3();
    let get = |image: ImageDims, grid: f64| {
        rows.iter()
            .find(|r| r.image == image && r.grid_size == grid)
            .unwrap()
    };
    assert_eq!(get(ImageDims::STUDY, 9.0).squares_per_grid, 1887);
    assert_eq!(get(ImageDims::VGA, 36.0).squares_per_grid, 252);
    let bits = get(ImageDims::VGA, 9.0).password_space_bits;
    assert!((bits - 59.6).abs() < 0.05);
    let bits = get(ImageDims::VGA, 24.0).password_space_bits;
    assert!((bits - 45.4).abs() < 0.05);
}

/// A stored password file written by the password layer can be reloaded and
/// attacked by the attack layer, and the attack result is consistent with
/// direct verification.
#[test]
fn password_file_round_trip_feeds_the_attack_layer() {
    let system = GraphicalPasswordSystem::new(
        PasswordPolicy::study_default(),
        DiscretizationConfig::robust(9.0),
        2,
    );
    let store = PasswordStore::new();
    let originals: Vec<(String, Vec<Point>)> = (0..10)
        .map(|i| {
            let clicks: Vec<Point> = (0..5)
                .map(|j| {
                    Point::new(
                        30.0 + i as f64 * 40.0 % 380.0 + j as f64,
                        20.0 + j as f64 * 60.0,
                    )
                })
                .collect();
            (format!("user{i}"), clicks)
        })
        .collect();
    for (name, clicks) in &originals {
        store.enroll(&system, name, clicks).unwrap();
    }

    // Serialize and reload the password file — the attacker's input.
    let reloaded = PasswordStore::from_file_contents(&store.to_file_contents()).unwrap();
    assert_eq!(reloaded.len(), 10);

    // Dictionary containing the first five users' exact points.
    let pool_points: Vec<Point> = originals
        .iter()
        .take(5)
        .flat_map(|(_, clicks)| clicks.iter().copied())
        .collect();
    let attack = OfflineKnownGridAttack::new(ClickPointPool::new(pool_points, 5));

    let mut cracked = 0;
    for (name, clicks) in &originals {
        let stored = reloaded.get(name).unwrap();
        if attack.cracks(&stored, clicks) {
            cracked += 1;
            // Anything the attack cracks, the system must also accept when
            // the guessed points are submitted as a login.
            assert!(system.verify(&stored, clicks).unwrap());
        }
    }
    assert!(
        cracked >= 5,
        "the five seeded users must be cracked, got {cracked}"
    );
}

/// The experiment registry runs end to end at quick scale and mentions the
/// key schemes in its reports.
#[test]
fn experiment_registry_runs_every_experiment() {
    let scale = ExperimentScale::quick();
    for experiment in Experiment::all() {
        let report = experiment.run(&scale);
        assert!(
            !report.trim().is_empty(),
            "{} produced an empty report",
            experiment.id()
        );
    }
}

/// The sharded, pipelined serving layer under real concurrency: enroll a
/// population, then drive concurrent logins from ≥8 client threads against
/// one server — correct passwords are accepted from every thread, requests
/// spread across shards and the worker pool, and the per-account lockout
/// still triggers exactly at the threshold while an innocent account on
/// the same server stays usable.
#[test]
fn concurrent_clients_against_sharded_server_preserve_lockout() {
    let server = AuthServer::new(ServerConfig::fast_for_tests());
    let store = server.store();
    let system = server.system().clone();
    let user_clicks = |user: usize| -> Vec<Point> {
        (0..5)
            .map(|i| {
                Point::new(
                    40.0 + ((user * 37 + i * 83) % 360) as f64,
                    30.0 + ((user * 53 + i * 61) % 260) as f64,
                )
            })
            .collect()
    };
    for user in 0..16 {
        store
            .enroll(&system, &format!("user{user}"), &user_clicks(user))
            .unwrap();
    }
    let handle = server.spawn().expect("spawn server");
    let addr = handle.addr();

    // 8 honest threads (pipelined correct logins) + 2 attacker threads
    // hammering one victim account with wrong clicks.
    let mut threads = Vec::new();
    for t in 0..8usize {
        threads.push(std::thread::spawn(move || {
            let mut client = AuthClient::connect(addr).expect("connect");
            for round in 0..4 {
                let burst: Vec<ClientMessage> = (0..4)
                    .map(|i| {
                        let user = (t + round + i * 2) % 15 + 1; // never user0 (the victim)
                        ClientMessage::Login {
                            username: format!("user{user}"),
                            clicks: user_clicks(user),
                        }
                    })
                    .collect();
                for response in client.request_pipelined(&burst).expect("burst") {
                    match response {
                        ServerMessage::LoginResult {
                            decision: LoginDecision::Accepted,
                            failures: 0,
                        } => {}
                        other => panic!("honest login mishandled: {other:?}"),
                    }
                }
            }
            client.quit().expect("quit");
        }));
    }
    for _ in 0..2 {
        threads.push(std::thread::spawn(move || {
            let mut client = AuthClient::connect(addr).expect("connect");
            let wrong: Vec<Point> = user_clicks(0)
                .iter()
                .map(|p| p.offset(25.0, 25.0))
                .collect();
            for _ in 0..6 {
                let (decision, failures) = client.login("user0", &wrong).expect("login");
                assert_ne!(
                    decision,
                    LoginDecision::Accepted,
                    "wrong clicks must never be accepted"
                );
                assert!(failures <= 3, "failure count is capped at the threshold");
            }
            client.quit().expect("quit");
        }));
    }
    for thread in threads {
        thread.join().expect("client thread");
    }

    // The victim is locked (12 wrong attempts across two attackers against
    // a 3-strike threshold) — even with the correct password.
    let mut client = AuthClient::connect(addr).expect("connect");
    let (decision, failures) = client.login("user0", &user_clicks(0)).expect("login");
    assert_eq!(decision, LoginDecision::LockedOut);
    assert_eq!(failures, 3);
    // Every other account still works: lockout is strictly per-account.
    let (decision, _) = client.login("user5", &user_clicks(5)).expect("login");
    assert_eq!(decision, LoginDecision::Accepted);
    client.quit().expect("quit");

    let stats = handle.stats();
    assert!(
        stats.shards.iter().filter(|s| s.accounts > 0).count() >= 2,
        "16 accounts must spread over ≥2 of the 4 shards: {:?}",
        stats.shards
    );
    assert_eq!(
        stats.workers.iter().map(|w| w.connections).sum::<u64>(),
        11,
        "10 load connections + 1 verdict connection through the pool"
    );
    assert!(
        stats.workers.iter().map(|w| w.logins).sum::<u64>() >= 142,
        "8×16 honest + 12 attack + 2 verdict logins served: {:?}",
        stats.workers
    );
    handle.shutdown();
}

/// Discretization invariants hold through the full password layer: a
/// re-entry accepted by the password system is always within the scheme's
/// maximum accepted distance, and anything within the guaranteed tolerance
/// is always accepted.
#[test]
fn password_layer_respects_discretization_contracts() {
    let clicks = graphical_passwords::example_clicks();
    for config in [
        DiscretizationConfig::centered(6),
        DiscretizationConfig::centered(9),
        DiscretizationConfig::robust(6.0),
        DiscretizationConfig::robust(9.0),
    ] {
        let system = GraphicalPasswordSystem::new(PasswordPolicy::study_default(), config, 2);
        let stored = system.enroll("probe", &clicks).unwrap();
        let scheme = config.build();
        for offset in [1.0f64, 3.0, 5.0, 7.0, 11.0, 17.0, 25.0, 33.0, 47.0] {
            let attempt: Vec<Point> = clicks
                .iter()
                .map(|p| ImageDims::STUDY.clamp_point(&p.offset(offset, -offset)))
                .collect();
            let accepted = system.verify(&stored, &attempt).unwrap();
            if offset < scheme.guaranteed_tolerance() {
                assert!(accepted, "{config:?}: offset {offset} must be accepted");
            }
            if offset > scheme.maximum_accepted_distance() {
                assert!(!accepted, "{config:?}: offset {offset} must be rejected");
            }
        }
    }
}
