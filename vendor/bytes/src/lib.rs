//! Vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable immutable byte buffer), [`BytesMut`]
//! (growable builder), and the [`Buf`] / [`BufMut`] cursor traits — exactly
//! the subset the `gp-netauth` wire protocol uses.  `Bytes` shares its
//! backing allocation through an `Arc`, so `clone` and `slice` are O(1).

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer with an internal read cursor
/// (advanced by the [`Buf`] methods).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wrap a static byte slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Remaining length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-slice sharing the same backing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Bytes({:02x?})", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

/// Read-cursor over a byte source; all integer reads are big-endian,
/// matching the real `bytes` crate methods used here.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Pop `len` bytes off the front.
    fn advance(&mut self, len: usize);

    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    ///
    /// # Panics
    /// All `get_*` methods panic when the buffer is too short, matching the
    /// real crate; callers bounds-check with [`Buf::remaining`] first.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, len: usize) {
        assert!(len <= self.len(), "advance past end of buffer");
        self.start += len;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Bytes {
    /// Split off the first `len` bytes as a shared sub-buffer, advancing
    /// this cursor past them.
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Growable byte builder; freeze into [`Bytes`] when done.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Write-cursor; all integer writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdeadbeef);
        b.put_u64(0x0102030405060708);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 15);
        assert_eq!(bytes.get_u8(), 0xab);
        assert_eq!(bytes.get_u16(), 0x1234);
        assert_eq!(bytes.get_u32(), 0xdeadbeef);
        assert_eq!(bytes.get_u64(), 0x0102030405060708);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_and_clone_share_content() {
        let bytes = Bytes::from(b"hello world".to_vec());
        let hello = bytes.slice(0..5);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&bytes.clone()[..], b"hello world");
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut bytes = Bytes::from(b"abcdef".to_vec());
        let ab = bytes.copy_to_bytes(2);
        assert_eq!(&ab[..], b"ab");
        assert_eq!(&bytes[..], b"cdef");
        assert_eq!(bytes.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut bytes = Bytes::from(b"ab".to_vec());
        bytes.advance(3);
    }
}
