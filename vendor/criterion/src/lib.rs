//! Vendored stand-in for `criterion`.
//!
//! A real measuring harness (not a mock): each benchmark is warmed up,
//! calibrated so one sample takes a useful amount of wall time, then timed
//! over a number of samples; the *median* ns/iteration is reported, which is
//! robust to scheduler noise.  Implements the subset of the criterion API
//! the workspace benches use (`benchmark_group`, `bench_function`,
//! `sample_size`, `Bencher::iter`, `black_box`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Environment knobs:
//!
//! * `GP_BENCH_JSON=path` — append one JSON line per benchmark
//!   (`{"group":..,"bench":..,"median_ns":..,"samples":..}`), consumed by
//!   `gp-bench`'s `bench_report` binary and CI.
//! * `GP_BENCH_SAMPLE_MS` — target milliseconds per sample (default 20).
//! * `GP_BENCH_MAX_SAMPLES` — cap on samples per benchmark (default 15).

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (empty when benched directly on [`Criterion`]).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Construct with environment-based configuration.
    pub fn from_env() -> Self {
        Self::default()
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: default_max_samples(),
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(String::new(), name.into(), default_max_samples(), f);
        self.record(result);
        self
    }

    fn record(&mut self, result: BenchResult) {
        report(&result);
        self.results.push(result);
    }

    /// All results measured so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Print a closing summary (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        eprintln!(
            "[criterion-lite] {} benchmarks measured",
            self.results.len()
        );
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Limit the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10; we just clamp into a sane band.
        self.sample_size = n.clamp(3, 200).min(default_max_samples());
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(self.name.clone(), id.into(), self.sample_size, f);
        self.criterion.record(result);
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// operation to measure.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Wall time of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn default_sample_ms() -> u64 {
    std::env::var("GP_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

fn default_max_samples() -> usize {
    std::env::var("GP_BENCH_MAX_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15)
}

fn run_bench<F>(group: String, name: String, max_samples: usize, mut f: F) -> BenchResult
where
    F: FnMut(&mut Bencher),
{
    // Warmup + calibration: find an iteration count that makes one sample
    // take roughly `sample_ms`.
    let sample_ns = default_sample_ms() as f64 * 1e6;
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let mut per_iter_ns;
    loop {
        f(&mut bencher);
        per_iter_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        if bencher.elapsed.as_nanos() as f64 >= sample_ns / 4.0 || bencher.iters >= (1 << 24) {
            break;
        }
        bencher.iters = (bencher.iters * 4).max(2);
    }
    let iters_per_sample = ((sample_ns / per_iter_ns.max(0.1)) as u64).clamp(1, 1 << 24);

    let samples = max_samples.max(3);
    let mut medians: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.iters = iters_per_sample;
        f(&mut bencher);
        medians.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
    }
    medians.sort_by(|a, b| a.total_cmp(b));
    let median_ns = medians[medians.len() / 2];

    BenchResult {
        group,
        name,
        median_ns,
        samples,
    }
}

fn report(result: &BenchResult) {
    let label = if result.group.is_empty() {
        result.name.clone()
    } else {
        format!("{}/{}", result.group, result.name)
    };
    eprintln!(
        "[bench] {label:<50} median {:>12.1} ns/iter ({} samples)",
        result.median_ns, result.samples
    );
    if let Ok(path) = std::env::var("GP_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"samples\":{}}}",
                result.group, result.name, result.median_ns, result.samples
            );
        }
    }
}

/// Group benchmark functions into a single callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_env();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_op() {
        std::env::set_var("GP_BENCH_SAMPLE_MS", "1");
        let mut c = Criterion::from_env();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.finish();
        assert_eq!(c.results().len(), 1);
        assert!(c.results()[0].median_ns > 0.0);
        assert!(
            c.results()[0].median_ns < 1e6,
            "an add should not take a millisecond"
        );
    }
}
