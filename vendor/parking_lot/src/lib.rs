//! Vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API the workspace
//! uses: `lock()` / `read()` / `write()` returning guards directly (no
//! `Result`).  Poisoning is handled by taking the inner value anyway — a
//! panic while holding one of these locks only ever aborts a test.

use std::sync::{self, TryLockError};

/// Mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock whose `read` / `write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_concurrent_readers() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let r1 = l.read();
        let handle = std::thread::spawn(move || *l2.read());
        assert_eq!(handle.join().unwrap(), 7);
        drop(r1);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
