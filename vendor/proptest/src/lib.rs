//! Vendored stand-in for `proptest`.
//!
//! A deterministic, sampling-based property-testing harness implementing the
//! subset of the proptest API this workspace uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`] / [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples, [`strategy::Just`] and simple `[class]{m,n}` string patterns,
//! * [`collection::vec`] and [`arbitrary::any`].
//!
//! Unlike the real proptest it does not shrink failing inputs: it reports
//! the failing arguments and a reproduction seed instead.  Case generation
//! is fully deterministic per test (seeded from the test path, overridable
//! with `PROPTEST_SEED`), so failures are reproducible by construction.

/// Configuration, RNG and case-runner.
pub mod test_runner {
    /// Error type returned (via the assertion macros) from a test case body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case does not apply (from [`crate::prop_assume!`]); resampled.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Deterministic RNG handed to strategies (xoshiro256\*\*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for attempt number `sequence` of a run seeded with `seed`.
        pub fn new(seed: u64, sequence: u64) -> Self {
            let mut sm = seed ^ sequence.wrapping_mul(0xa076_1d64_78bd_642f);
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn base_seed(name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse() {
                return seed;
            }
        }
        // FNV-1a over the test path: stable across runs and platforms.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    /// Drive a test-case closure until `config.cases` cases pass, panicking
    /// on the first failure with the offending arguments and seed.
    pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let seed = base_seed(name);
        let mut executed = 0u32;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while executed < config.cases {
            let mut rng = TestRng::new(seed, attempt);
            attempt += 1;
            let (args, result) = case(&mut rng);
            match result {
                Ok(()) => executed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    let limit = (config.cases as u64).saturating_mul(16).max(1024);
                    assert!(
                        rejected <= limit,
                        "proptest '{name}': {rejected} rejected cases — assumptions too strict"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{name}' failed (case {executed}, attempt {}):\n  {msg}\n  \
                         args: {args}\n  reproduce with PROPTEST_SEED={seed}",
                        attempt - 1
                    );
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and built-in strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Self::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Sample one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy producing a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A boxed sampling closure: one arm of a [`Union`].
    pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between boxed strategy arms (built by
    /// [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// Build from sampling closures.
        pub fn new(arms: Vec<UnionArm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            (self.arms[idx])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128
                        | ((rng.next_u64() as u128) << 64)) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128
                        | ((rng.next_u64() as u128) << 64)) % span;
                    (start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    start + (rng.unit_f64() as $t) * (end - start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// `&'static str` strategies: a simplified regex dialect covering the
    /// patterns this workspace uses — one or more char classes (`[a-z0-9._]`,
    /// ranges allowed, leading/trailing literal `-`) each followed by a
    /// `{min,max}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> Vec<char> {
        let mut class = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                // Lookahead: `a-z` is a range unless `-` is last (literal).
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&end) if end != ']' => {
                        chars.next();
                        chars.next();
                        for v in c as u32..=end as u32 {
                            if let Some(ch) = char::from_u32(v) {
                                class.push(ch);
                            }
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            class.push(c);
        }
        assert!(!class.is_empty(), "empty char class in pattern {pattern:?}");
        class
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let class = match c {
                '[' => parse_class(&mut chars, pattern),
                other => vec![other],
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo, hi),
                    None => (spec.as_str(), spec.as_str()),
                };
                (
                    lo.trim().parse::<usize>().unwrap_or_else(|_| {
                        panic!("bad repetition {spec:?} in pattern {pattern:?}")
                    }),
                    hi.trim().parse::<usize>().unwrap_or_else(|_| {
                        panic!("bad repetition {spec:?} in pattern {pattern:?}")
                    }),
                )
            } else {
                (1, 1)
            };
            let len = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..len {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact length or a half-open
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec size range");
            Self {
                min: range.start,
                max: range.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *range.start(),
                max: *range.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Sample an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values with a wide dynamic range.
            let mantissa = rng.unit_f64() * 2.0 - 1.0;
            let exp = rng.below(64) as i32 - 32;
            mantissa * (2f64).powi(exp)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.  Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strategy), __rng);)+
                    let __args = format!(
                        concat!($("\n    ", stringify!($arg), " = {:?}",)+),
                        $(&$arg),+
                    );
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    (__args, __result)
                },
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n    left: {:?}\n    right: {:?}",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n    left: {:?}\n    right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)*), left, right
                ),
            ));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Discard the current case (resampled) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __strategy = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::new_value(&__strategy, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_per_test_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u8>(), 0..32);
        let mut a = TestRng::new(1, 0);
        let mut b = TestRng::new(1, 0);
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::new(9, 0);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9_.-]{1,32}".new_value(&mut rng);
            assert!((1..=32).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'));
            let t = "[ -~]{0,80}".new_value(&mut rng);
            assert!(t.len() <= 80);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The harness itself: ranges respect bounds, tuples compose,
        /// prop_map applies, oneof covers its arms.
        #[test]
        fn ranges_and_maps_compose(
            x in 3u32..17,
            y in -2.0..2.0f64,
            p in (0u8..4, 10usize..20).prop_map(|(a, b)| a as usize + b),
            j in prop_oneof![Just(1u8), Just(2u8), 5u8..7],
            v in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((10..24).contains(&p));
            prop_assert!(j == 1 || j == 2 || (5u8..7).contains(&j));
            prop_assert!((2..5).contains(&v.len()));
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_filters_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }
}
