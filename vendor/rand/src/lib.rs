//! Vendored stand-in for the `rand` crate.
//!
//! Implements exactly the surface this workspace uses: the [`Rng`] trait
//! (`gen`, `gen_range`), [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::StdRng`] (xoshiro256\*\*), and [`seq::SliceRandom`]
//! (`choose`, `choose_multiple`, `shuffle`).  All call sites in the
//! workspace seed explicitly, so no OS entropy source is needed.
//!
//! The generator is high-quality for simulation purposes but is NOT a
//! cryptographic RNG; nothing security-sensitive in the workspace draws
//! from it (password hashing is deterministic, salts are user identifiers).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `Rng` ("standard"
/// distribution: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for i32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}
impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing random value generation, automatically implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator; the workspace's stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`, …).
pub mod seq {
    use super::Rng;

    /// Iterator returned by [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.items.size_hint()
        }
    }

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements chosen without replacement (in random
        /// order); fewer if the slice is shorter than `amount`.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` entries end up being a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            let picked: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: picked.into_iter(),
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&y));
            let z = rng.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_multiple_returns_distinct_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let items: Vec<u32> = (0..20).collect();
        for _ in 0..100 {
            let picked: Vec<u32> = items.choose_multiple(&mut rng, 5).copied().collect();
            assert_eq!(picked.len(), 5);
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "sample must be without replacement");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut items: Vec<u32> = (0..50).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_on_empty_slice_is_none() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
