//! Vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types but
//! never drives an actual serializer (the wire protocol and password-file
//! formats are hand-rolled).  This crate supplies the two trait names and
//! re-exports the no-op derives so the annotations compile offline.  The
//! traits carry blanket implementations so generic bounds like
//! `T: Serialize` would also be satisfied.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
