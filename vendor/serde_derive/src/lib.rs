//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! This workspace only *derives* the serde traits (they document intent and
//! keep the types ready for a real serde once registry access exists); no
//! code path ever serializes through them.  The derives therefore expand to
//! nothing, which keeps every `#[derive(Serialize, Deserialize)]` in the
//! tree compiling without the real `serde`.

use proc_macro::TokenStream;

/// Expands to nothing; the `serde::Serialize` marker trait has a blanket
/// implementation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the `serde::Deserialize` marker trait has a blanket
/// implementation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
